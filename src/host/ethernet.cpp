#include "host/ethernet.hpp"

#include <stdexcept>

namespace nectar::host {

namespace costs = sim::costs;

EthernetSegment::Nic::Nic(EthernetSegment& seg, Host& host, int station)
    : seg_(seg), host_(host), station_(station) {}

EthernetSegment::Nic& EthernetSegment::attach(Host& host) {
  nics_.push_back(std::make_unique<Nic>(*this, host, static_cast<int>(nics_.size())));
  return *nics_.back();
}

void EthernetSegment::Nic::send(int dst_station, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMtu) throw std::invalid_argument("Ethernet: frame exceeds MTU");
  core::Cpu& cpu = host_.cpu();
  // Same host protocol stack as netdev mode, but no VME crossing: the NIC
  // DMA reads straight from host memory.
  cpu.charge(costs::kHostStackPerPacket);
  cpu.charge(static_cast<sim::SimTime>(payload.size()) * costs::kHostCopyPerByte);
  cpu.charge(costs::kEthernetPerPacket);
  ++tx_;
  seg_.transmit(dst_station, std::vector<std::uint8_t>(payload.begin(), payload.end()));
}

void EthernetSegment::transmit(int dst_station, std::vector<std::uint8_t> frame) {
  if (dst_station < 0 || static_cast<std::size_t>(dst_station) >= nics_.size()) {
    throw std::out_of_range("Ethernet: no such station");
  }
  // Shared medium: one frame at a time (no collision modeling; the paper's
  // measurement is a two-host stream on a quiet segment).
  sim::SimTime start = std::max(engine_.now(), busy_until_);
  sim::SimTime ttime =
      sim::transmit_time(static_cast<std::int64_t>(frame.size() + 18), costs::kEthernetBitsPerSec);
  busy_until_ = start + ttime;
  Nic* dst = nics_[static_cast<std::size_t>(dst_station)].get();
  engine_.schedule_at(busy_until_, [dst, frame = std::move(frame)]() mutable {
    dst->deliver(std::move(frame));
  });
}

void EthernetSegment::Nic::deliver(std::vector<std::uint8_t> frame) {
  rx_queue_.push_back(std::move(frame));
  if (rx_waiter_ != nullptr) {
    core::Thread* t = rx_waiter_;
    rx_waiter_ = nullptr;
    host_.cpu().wake(t);
  }
}

void EthernetSegment::Nic::start_receiver(
    std::function<void(std::vector<std::uint8_t>)> handler) {
  host_.run_process("ether-input", [this, handler = std::move(handler)] {
    core::Cpu& cpu = host_.cpu();
    for (;;) {
      {
        core::InterruptGuard g(cpu);
        while (rx_queue_.empty()) {
          rx_waiter_ = cpu.current_thread();
          cpu.block_unmasked();
        }
      }
      std::vector<std::uint8_t> frame = std::move(rx_queue_.front());
      rx_queue_.pop_front();
      ++rx_;
      cpu.charge(costs::kHostInterrupt);
      cpu.charge(costs::kHostStackPerPacket);
      cpu.charge(static_cast<sim::SimTime>(frame.size()) * costs::kHostCopyPerByte);
      handler(std::move(frame));
    }
  });
}

}  // namespace nectar::host
