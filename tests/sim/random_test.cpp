#include "sim/random.hpp"

#include <gtest/gtest.h>

namespace nectar::sim {
namespace {

TEST(Random, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Random, NextBelowStaysInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Random, NextRangeInclusive) {
  Random r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, DoubleInUnitInterval) {
  Random r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // rough uniformity check
}

TEST(Random, ChanceRespectsProbability) {
  Random r(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.1) ? 1 : 0;
  EXPECT_NEAR(hits, 1000, 150);
  Random r2(14);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(r2.chance(0.0));
}

TEST(Random, ZeroSeedStillWorks) {
  Random r(0);
  EXPECT_NE(r.next_u64(), r.next_u64());
}

}  // namespace
}  // namespace nectar::sim
