#include "host/netdev.hpp"

#include <gtest/gtest.h>

#include "host/ethernet.hpp"
#include "host/node.hpp"

namespace nectar::host {
namespace {

struct Fixture {
  net::NectarSystem sys{2, /*with_vme=*/true};
  HostNode h0{sys, 0};
  HostNode h1{sys, 1};
  NetDevice dev0{h0.nin, sys.net().datalink(0)};
  NetDevice dev1{h1.nin, sys.net().datalink(1)};
};

TEST(NetDev, DeliversPacketsHostToHost) {
  Fixture f;
  std::vector<std::vector<std::uint8_t>> got;
  f.dev1.start_receiver([&](std::vector<std::uint8_t> pkt) { got.push_back(std::move(pkt)); });
  std::vector<std::uint8_t> pkt(600);
  for (std::size_t i = 0; i < pkt.size(); ++i) pkt[i] = static_cast<std::uint8_t>(i);
  f.h0.host.run_process("send", [&] {
    f.dev0.send_packet(1, pkt);
    f.dev0.send_packet(1, pkt);
  });
  f.sys.net().run_until(sim::sec(1));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], pkt);  // byte-exact through pools, wire, and pools again
  EXPECT_EQ(f.dev0.packets_sent(), 2u);
  EXPECT_EQ(f.dev1.packets_received(), 2u);
}

TEST(NetDev, RejectsOversizePackets) {
  Fixture f;
  bool threw = false;
  f.h0.host.run_process("send", [&] {
    std::vector<std::uint8_t> big(NetDevice::kMtu + 1);
    try {
      f.dev0.send_packet(1, big);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  });
  f.sys.net().run_until(sim::sec(1));
  EXPECT_TRUE(threw);
}

TEST(NetDev, SlowerThanProtocolEngineByDesign) {
  // §6.3: the whole point — host-resident protocols push per-packet cost
  // onto the host; one 1500-byte packet takes >1.5 ms end to end.
  Fixture f;
  sim::SimTime got_at = -1;
  f.dev1.start_receiver([&](std::vector<std::uint8_t>) { got_at = f.sys.engine().now(); });
  sim::SimTime t0 = -1;
  f.h0.host.run_process("send", [&] {
    std::vector<std::uint8_t> pkt(NetDevice::kMtu);
    t0 = f.sys.engine().now();
    f.dev0.send_packet(1, pkt);
  });
  f.sys.net().run_until(sim::sec(1));
  ASSERT_GT(got_at, 0);
  EXPECT_GT(got_at - t0, sim::msec(2));  // two host stacks + VME crossing
}

TEST(Ethernet, DeliversFramesBetweenHosts) {
  sim::Engine e;
  Host a(e, "a"), b(e, "b");
  EthernetSegment seg(e);
  auto& na = seg.attach(a);
  auto& nb = seg.attach(b);
  std::vector<std::uint8_t> got;
  nb.start_receiver([&](std::vector<std::uint8_t> fr) { got = std::move(fr); });
  std::vector<std::uint8_t> frame(800, 0x77);
  a.run_process("tx", [&] { na.send(nb.station(), frame); });
  e.run();
  EXPECT_EQ(got, frame);
  EXPECT_EQ(na.frames_sent(), 1u);
  EXPECT_EQ(nb.frames_received(), 1u);
}

TEST(Ethernet, SharedMediumSerializes) {
  sim::Engine e;
  Host a(e, "a"), b(e, "b"), c(e, "c");
  EthernetSegment seg(e);
  auto& na = seg.attach(a);
  auto& nb = seg.attach(b);
  auto& nc = seg.attach(c);
  std::vector<sim::SimTime> arrivals;
  nc.start_receiver([&](std::vector<std::uint8_t>) { arrivals.push_back(e.now()); });
  std::vector<std::uint8_t> frame(1500);
  a.run_process("tx", [&] { na.send(nc.station(), frame); });
  b.run_process("tx", [&] { nb.send(nc.station(), frame); });
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // 1518-byte frame at 10 Mbit/s = ~1.2 ms of serialization between frames.
  EXPECT_GE(arrivals[1] - arrivals[0], sim::msec(1));
}

TEST(Ethernet, BadStationThrows) {
  sim::Engine e;
  Host a(e, "a");
  EthernetSegment seg(e);
  auto& na = seg.attach(a);
  bool threw = false;
  a.run_process("tx", [&] {
    std::vector<std::uint8_t> frame(10);
    try {
      na.send(7, frame);
    } catch (const std::out_of_range&) {
      threw = true;
    }
  });
  e.run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace nectar::host
