#include "scenario/topology.hpp"

#include <gtest/gtest.h>

#include "scenario/engine.hpp"

namespace nectar::scenario {
namespace {

TEST(ScenarioTopologyTest, StarBuildsOneHub) {
  net::Network net;
  EXPECT_EQ(build_topology(net, {TopologyKind::Star, 8}, 1), 8);
  EXPECT_EQ(net.hub_count(), 1);
  EXPECT_EQ(net.cab_count(), 8);
  // Routes are installed: every pair reachable in one hop.
  EXPECT_EQ(net.route(0, 7).size(), 1u);
}

TEST(ScenarioTopologyTest, StarRejectsMoreNodesThanPorts) {
  net::Network net;
  TopologySpec s;
  s.kind = TopologyKind::Star;
  s.nodes = 17;
  s.hub_ports = 16;
  EXPECT_THROW(build_topology(net, s, 1), std::invalid_argument);
}

TEST(ScenarioTopologyTest, DualHubSplitsNodesAndRoutesAcrossTrunk) {
  net::Network net;
  TopologySpec s;
  s.kind = TopologyKind::DualHub;
  s.nodes = 10;
  s.trunks = 2;
  EXPECT_EQ(build_topology(net, s, 1), 10);
  EXPECT_EQ(net.hub_count(), 2);
  // Node 0 lives on hub 0, node 9 on hub 1: the route crosses the trunk.
  EXPECT_EQ(net.cab_hub(0), 0);
  EXPECT_EQ(net.cab_hub(9), 1);
  EXPECT_EQ(net.route(0, 9).size(), 2u);
  EXPECT_EQ(net.route(0, 1).size(), 1u);
}

TEST(ScenarioTopologyTest, FatTreeScalesPastOneHubRadix) {
  net::Network net;
  TopologySpec s;
  s.kind = TopologyKind::FatTree;
  s.nodes = 64;
  s.hub_ports = 16;
  s.spines = 2;
  EXPECT_EQ(build_topology(net, s, 1), 64);
  // 14 CABs per leaf -> 5 leaves, plus 2 spines.
  EXPECT_EQ(net.hub_count(), 7);
  // Same leaf: one hop. Different leaves: leaf -> spine -> leaf.
  EXPECT_EQ(net.route(0, 1).size(), 1u);
  EXPECT_EQ(net.route(0, 63).size(), 3u);
}

TEST(ScenarioTopologyTest, RequiresEmptyNetwork) {
  net::Network net;
  net.add_hub();
  EXPECT_THROW(build_topology(net, {TopologyKind::Star, 2}, 1), std::invalid_argument);
}

TEST(ScenarioTopologyTest, ParseKind) {
  EXPECT_EQ(TopologySpec::parse_kind("star"), TopologyKind::Star);
  EXPECT_EQ(TopologySpec::parse_kind("dual_hub"), TopologyKind::DualHub);
  EXPECT_EQ(TopologySpec::parse_kind("fat_tree"), TopologyKind::FatTree);
  EXPECT_THROW(TopologySpec::parse_kind("torus"), std::invalid_argument);
}

TEST(ScenarioTopologyTest, FatTreeCarriesTrafficEndToEnd) {
  // A small closed-loop scenario across leaves proves the built fabric
  // actually switches: every flow delivers.
  ScenarioSpec spec;
  spec.topology.kind = TopologyKind::FatTree;
  spec.topology.nodes = 20;
  spec.topology.hub_ports = 8;
  spec.topology.spines = 2;
  spec.duration = sim::msec(50);
  WorkloadSpec w;
  w.name = "dg";
  w.proto = Proto::Datagram;
  w.mode = Mode::Closed;
  w.think = sim::msec(1);
  w.stride = 7;  // crosses leaf boundaries (6 CABs per leaf)
  spec.workloads.push_back(w);
  Scenario sc(std::move(spec));
  sc.run();
  const auto& wl = *sc.workloads().at(0);
  EXPECT_GT(wl.delivered(), 0u);
  for (const FlowStats& f : wl.flows()) {
    EXPECT_GT(f.delivered, 0u) << "flow " << f.src << "->" << f.dst;
  }
}

}  // namespace
}  // namespace nectar::scenario
