#pragma once

// Source-rooted multicast distribution trees over the HUB graph.
//
// Unicast frames carry one output-port byte per HUB hop (hw::RouteRef,
// paper §2.1). A multicast frame instead carries a reference to an interned
// McastTree: at each HUB the crossbar looks up its tree node and replicates
// the frame once per edge — trunk edges carry the (smaller) subtree onward,
// CAB edges deliver a plain unicast frame into the port's fiber. The tree is
// computed once per (source, member-set) by net::Network::mcast_ref and
// shared immutably by every frame of the group, exactly like the unicast
// route cache: nothing about the run mutates it, so shards need no locking.

#include <cstdint>
#include <memory>
#include <vector>

namespace nectar::hw {

/// One multicast distribution tree. Node 0 is the tree node of the source
/// CAB's own HUB; a frame leaves the source with mcast_node = 0 and an empty
/// unicast route, and every HUB it reaches fans it out per its node's edges.
struct McastTree {
  struct Edge {
    std::uint8_t port;   ///< HUB output port the replica leaves through
    std::int32_t child;  ///< >= 0: tree node at the downstream HUB; < 0: CAB leaf
  };
  struct Node {
    /// Sorted by port at build time: fan-out order (and therefore output
    /// contention) is a pure function of the tree, not of build history.
    std::vector<Edge> edges;
    /// Maximum port bytes a unicast frame would still carry on any root-to-
    /// leaf path below this node — stands in for remaining_hops() in
    /// Frame::wire_bytes so a multicast frame serializes like the longest
    /// unicast frame it replaces at the same hop.
    std::uint32_t depth = 0;
  };
  std::vector<Node> nodes;

  /// Total CAB deliveries in the subtree rooted at `node` (diagnostics).
  std::size_t leaves(std::int32_t node = 0) const {
    if (node < 0 || static_cast<std::size_t>(node) >= nodes.size()) return 0;
    std::size_t n = 0;
    for (const Edge& e : nodes[static_cast<std::size_t>(node)].edges) {
      n += e.child < 0 ? 1 : leaves(e.child);
    }
    return n;
  }
};

/// Shared immutable handle to an interned McastTree (the multicast analogue
/// of RouteRef): frames hold a reference, never a copy.
class McastRef {
 public:
  McastRef() = default;
  explicit McastRef(McastTree tree)
      : p_(tree.nodes.empty() ? nullptr
                              : std::make_shared<const McastTree>(std::move(tree))) {}

  bool valid() const { return p_ != nullptr; }
  const McastTree& tree() const { return *p_; }
  const McastTree::Node& node(std::int32_t i) const {
    return p_->nodes[static_cast<std::size_t>(i)];
  }

 private:
  std::shared_ptr<const McastTree> p_;
};

}  // namespace nectar::hw
