#pragma once

namespace nectar::core {

/// Scheduling priorities (paper §3.1): "The current scheduler uses a
/// preemptive, priority-based scheme, with system threads running at a
/// higher priority than application threads."
constexpr int kInterruptPriority = 100;  // implicit: the interrupt context
constexpr int kSystemPriority = 10;      // protocol / runtime threads
constexpr int kAppPriority = 5;          // application tasks on the CAB
constexpr int kHostProcessPriority = 5;  // host processes (on the host CPU)

}  // namespace nectar::core
