#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/engine.hpp"

namespace nectar::scenario {
namespace {

// Scenario-level contract for [parallel] (docs/SCENARIOS.md): the section
// parses and validates; shards > 1 rejects the process-global observability
// features; and the simulated results — deliveries, latencies, fault
// attribution — are invariant across shard counts, with full byte-level
// determinism at any fixed shard count.

constexpr const char* kFatTree = R"(
[scenario]
name = par-test
seed = 5
duration = 200ms

[topology]
kind = fat_tree
nodes = 8
hub_ports = 6
spines = 2
trunk_propagation = 2us
route_spread = yes

[workload]
name = udp
proto = udp
mode = open
users = 40
rate = 5
size_min = 64
size_max = 512
stride = 4

[workload]
name = rmp
proto = rmp
mode = closed
users = 2
think = 5ms
size = 128
stride = 4

[fault]
kind = link_drop
target = node5.link
at = 80ms
duration = 40ms
rate = 0.3
jitter = 10ms
)";

ScenarioSpec fat_tree_spec(int shards) {
  ScenarioSpec spec = ScenarioSpec::from_config(Config::parse_string(kFatTree));
  spec.parallel.shards = shards;
  return spec;
}

TEST(ParallelScenarioTest, ParallelSectionParses) {
  ScenarioSpec spec = ScenarioSpec::from_config(Config::parse_string(
      "[parallel]\nshards = 4\npartition = block\n"));
  EXPECT_EQ(spec.parallel.shards, 4);
  EXPECT_EQ(spec.parallel.partition, "block");

  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[parallel]\nshards = 0\n")),
               std::invalid_argument);
  EXPECT_THROW(
      ScenarioSpec::from_config(Config::parse_string("[parallel]\npartition = striped\n")),
      std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[parallel]\nshard = 4\n")),
               std::runtime_error)
      << "unknown keys must be rejected";
  EXPECT_THROW(
      ScenarioSpec::from_config(Config::parse_string("[topology]\ntrunk_propagation = 0\n")),
      std::invalid_argument);
}

TEST(ParallelScenarioTest, ShardsRejectProcessGlobalFeatures) {
  ScenarioSpec with_tracing = fat_tree_spec(2);
  with_tracing.tracing.enabled = true;
  EXPECT_THROW(Scenario sc(std::move(with_tracing)), std::invalid_argument);

  ScenarioSpec with_routing = fat_tree_spec(2);
  with_routing.routing.enabled = true;
  EXPECT_THROW(Scenario sc(std::move(with_routing)), std::invalid_argument);

  // Single shard keeps both available.
  ScenarioSpec seq = fat_tree_spec(1);
  seq.tracing.enabled = true;
  EXPECT_NO_THROW(Scenario sc(std::move(seq)));
}

TEST(ParallelScenarioTest, ZeroTrunkPropagationRejectedAcrossShards) {
  ScenarioSpec spec = fat_tree_spec(2);
  spec.topology.trunk_propagation = 0;
  // With 2 shards the leaf<->spine trunks cross shards, so wiring must
  // refuse a zero flight time (it would zero the lookahead).
  EXPECT_THROW(Scenario sc(std::move(spec)), std::invalid_argument);
  ScenarioSpec seq = fat_tree_spec(1);
  seq.topology.trunk_propagation = 0;
  EXPECT_NO_THROW(Scenario sc(std::move(seq)));  // one shard: purely local wiring
}

struct Outcome {
  std::vector<std::uint64_t> delivered, shed, errors;
  std::vector<sim::SimTime> p50, p99;
  sim::SimTime fault_at;
  std::uint64_t fault_drops, net_drops;
  std::string report;
};

Outcome run_fat_tree(int shards, const std::string& partition = "modulo") {
  ScenarioSpec spec = fat_tree_spec(shards);
  spec.parallel.partition = partition;
  Scenario sc(std::move(spec));
  sc.run();
  Outcome o;
  for (const auto& w : sc.workloads()) {
    o.delivered.push_back(w->delivered());
    o.shed.push_back(w->shed());
    o.errors.push_back(w->errors());
    o.p50.push_back(w->latency().p50());
    o.p99.push_back(w->latency().p99());
  }
  o.fault_at = sc.faults().records().at(0).applied_at;
  o.fault_drops = sc.faults().total_attributed_drops();
  o.net_drops = sc.faults().network_drops();
  o.report = sc.report().to_json_string();
  return o;
}

TEST(ParallelScenarioTest, CrossShardTrafficFlows) {
  ScenarioSpec spec = fat_tree_spec(2);
  Scenario sc(std::move(spec));
  EXPECT_EQ(sc.net().shard_count(), 2);
  EXPECT_EQ(sc.net().lookahead(), sim::usec(2));
  sc.run();
  EXPECT_GT(sc.workloads().at(0)->delivered(), 0u);
  EXPECT_GT(sc.workloads().at(1)->delivered(), 0u);
  // stride 4 == cabs_per_leaf, so every message crosses a trunk; with the
  // leaves on different shards that traffic must ride the mailboxes.
  EXPECT_GT(sc.net().parallel().cross_events(), 0u);
  EXPECT_GT(sc.net().parallel().windows(), 0u);
  std::string json = sc.report().to_json_string();
  for (const char* key : {"parallel.shards", "parallel.lookahead", "parallel.windows",
                          "parallel.cross_events", "parallel.ideal_speedup"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing result " << key;
  }
}

TEST(ParallelScenarioTest, ResultsInvariantAcrossShardCounts) {
  Outcome s1 = run_fat_tree(1);
  Outcome s2 = run_fat_tree(2);
  Outcome s2b = run_fat_tree(2, "block");
  for (const Outcome* o : {&s2, &s2b}) {
    EXPECT_EQ(s1.delivered, o->delivered);
    EXPECT_EQ(s1.shed, o->shed);
    EXPECT_EQ(s1.errors, o->errors);
    EXPECT_EQ(s1.p50, o->p50);
    EXPECT_EQ(s1.p99, o->p99);
    EXPECT_EQ(s1.fault_at, o->fault_at);
    EXPECT_EQ(s1.fault_drops, o->fault_drops);
    EXPECT_EQ(s1.net_drops, o->net_drops);
  }
}

TEST(ParallelScenarioTest, FixedShardCountIsByteDeterministic) {
  Outcome a = run_fat_tree(2);
  Outcome b = run_fat_tree(2);
  EXPECT_EQ(a.report, b.report) << "same (spec, seed, shards) must be byte-identical";
}

}  // namespace
}  // namespace nectar::scenario
