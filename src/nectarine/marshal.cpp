#include "nectarine/marshal.hpp"

#include <stdexcept>

#include "proto/headers.hpp"

namespace nectar::nectarine {

namespace {
core::Cpu& caller() {
  core::Cpu* c = core::Cpu::current();
  if (c == nullptr) throw std::logic_error("marshal op outside any execution context");
  return *c;
}
}  // namespace

// --- Encoder ---------------------------------------------------------------------

Marshaller::Encoder::Encoder(core::CabRuntime& rt, core::Message m) : rt_(rt), m_(m) {}

void Marshaller::Encoder::charge(std::size_t bytes) {
  caller().charge(static_cast<sim::SimTime>(bytes) * kCostPerByte);
}

void Marshaller::Encoder::raw32(std::uint32_t v) {
  if (offset_ + 4 > m_.len) throw std::length_error("Marshaller: message too small");
  std::uint8_t buf[4];
  proto::put32(buf, 0, v);
  rt_.board().memory().write(m_.data + offset_, buf);
  offset_ += 4;
}

void Marshaller::Encoder::raw_bytes(std::span<const std::uint8_t> bytes) {
  std::uint32_t padded = (static_cast<std::uint32_t>(bytes.size()) + 3) & ~3u;
  if (offset_ + padded > m_.len) throw std::length_error("Marshaller: message too small");
  rt_.board().memory().write(m_.data + offset_, bytes);
  if (padded > bytes.size()) {
    rt_.board().memory().fill(m_.data + offset_ + static_cast<hw::CabAddr>(bytes.size()),
                              padded - bytes.size(), 0);
  }
  offset_ += padded;
}

Marshaller::Encoder& Marshaller::Encoder::put_u32(std::uint32_t v) {
  charge(8);
  raw32(kTagU32);
  raw32(v);
  return *this;
}

Marshaller::Encoder& Marshaller::Encoder::put_i64(std::int64_t v) {
  charge(12);
  raw32(kTagI64);
  raw32(static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) >> 32));
  raw32(static_cast<std::uint32_t>(static_cast<std::uint64_t>(v)));
  return *this;
}

Marshaller::Encoder& Marshaller::Encoder::put_string(const std::string& s) {
  charge(8 + s.size());
  raw32(kTagString);
  raw32(static_cast<std::uint32_t>(s.size()));
  raw_bytes(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()),
                                          s.size()));
  return *this;
}

Marshaller::Encoder& Marshaller::Encoder::put_opaque(std::span<const std::uint8_t> bytes) {
  charge(8 + bytes.size());
  raw32(kTagOpaque);
  raw32(static_cast<std::uint32_t>(bytes.size()));
  raw_bytes(bytes);
  return *this;
}

Marshaller::Encoder& Marshaller::Encoder::put_array_u32(std::span<const std::uint32_t> values) {
  charge(8 + values.size() * 4);
  raw32(kTagArrayU32);
  raw32(static_cast<std::uint32_t>(values.size()));
  for (std::uint32_t v : values) raw32(v);
  return *this;
}

core::Message Marshaller::Encoder::finish() {
  return core::Mailbox::adjust_suffix(m_, m_.len - offset_);
}

// --- Decoder ------------------------------------------------------------------------

Marshaller::Decoder::Decoder(core::CabRuntime& rt, const core::Message& m) : rt_(rt), m_(m) {}

void Marshaller::Decoder::charge(std::size_t bytes) {
  caller().charge(static_cast<sim::SimTime>(bytes) * kCostPerByte);
}

std::uint32_t Marshaller::Decoder::raw32() {
  if (offset_ + 4 > m_.len) throw std::out_of_range("Marshaller: truncated message");
  std::uint8_t buf[4];
  rt_.board().memory().read(m_.data + offset_, buf);
  offset_ += 4;
  return proto::get32(buf, 0);
}

void Marshaller::Decoder::expect(Tag t) {
  std::uint32_t got = raw32();
  if (got != static_cast<std::uint32_t>(t)) {
    throw std::invalid_argument("Marshaller: expected tag " + std::to_string(t) + ", found " +
                                std::to_string(got));
  }
}

std::uint32_t Marshaller::Decoder::get_u32() {
  charge(8);
  expect(kTagU32);
  return raw32();
}

std::int64_t Marshaller::Decoder::get_i64() {
  charge(12);
  expect(kTagI64);
  std::uint64_t hi = raw32();
  std::uint64_t lo = raw32();
  return static_cast<std::int64_t>(hi << 32 | lo);
}

std::string Marshaller::Decoder::get_string() {
  expect(kTagString);
  std::uint32_t len = raw32();
  charge(8 + len);
  std::uint32_t padded = (len + 3) & ~3u;
  if (offset_ + padded > m_.len) throw std::out_of_range("Marshaller: truncated string");
  std::vector<std::uint8_t> buf(len);
  rt_.board().memory().read(m_.data + offset_, buf);
  offset_ += padded;
  return {buf.begin(), buf.end()};
}

std::vector<std::uint8_t> Marshaller::Decoder::get_opaque() {
  expect(kTagOpaque);
  std::uint32_t len = raw32();
  charge(8 + len);
  std::uint32_t padded = (len + 3) & ~3u;
  if (offset_ + padded > m_.len) throw std::out_of_range("Marshaller: truncated opaque");
  std::vector<std::uint8_t> buf(len);
  rt_.board().memory().read(m_.data + offset_, buf);
  offset_ += padded;
  return buf;
}

std::vector<std::uint32_t> Marshaller::Decoder::get_array_u32() {
  expect(kTagArrayU32);
  std::uint32_t n = raw32();
  charge(8 + static_cast<std::size_t>(n) * 4);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(raw32());
  return out;
}

}  // namespace nectar::nectarine
