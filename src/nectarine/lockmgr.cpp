#include "nectarine/lockmgr.hpp"

#include <algorithm>

#include "proto/headers.hpp"

namespace nectar::nectarine {

// --- LockServer ----------------------------------------------------------------

LockServer::LockServer(core::CabRuntime& rt, nproto::ReqResp& reqresp, nproto::Rmp& rmp)
    : rt_(rt),
      reqresp_(reqresp),
      rmp_(rmp),
      service_(rt.create_mailbox("lock-server")) {
  rt_.fork_system("lock-server", [this] { server_loop(); });
}

std::size_t LockServer::locks_held() const {
  return static_cast<std::size_t>(
      std::count_if(locks_.begin(), locks_.end(),
                    [](const auto& kv) { return !kv.second.holders.empty(); }));
}

bool LockServer::compatible(const LockState& l, Mode m) const {
  if (l.holders.empty()) return true;
  // Shared joins shared; exclusive joins nothing; nothing joins exclusive.
  if (m == Mode::Exclusive) return false;
  return l.holders.front().mode == Mode::Shared;
}

void LockServer::send_grant(const Waiter& w) {
  core::Message m = service_.begin_put(4);
  rt_.board().memory().write32(m.data, kGranted);
  rmp_.send({w.node, w.grant_mailbox}, m);
  ++grants_;
}

void LockServer::promote_waiters(LockState& l) {
  // FIFO, but let a run of shared waiters in together.
  while (!l.waiters.empty()) {
    Waiter& w = l.waiters.front();
    if (!compatible(l, w.mode)) break;
    l.holders.push_back({w.owner_id, w.mode});
    send_grant(w);
    l.waiters.pop_front();
  }
}

void LockServer::server_loop() {
  hw::CabMemory& mem = rt_.board().memory();
  for (;;) {
    core::Message req = service_.begin_get();
    auto info = nproto::ReqResp::parse_request(rt_, req);
    core::Message payload = nproto::ReqResp::payload_of(req);

    std::uint32_t status = kBadRequest;
    if (payload.len >= 16) {
      std::uint32_t op = mem.read32(payload.data);
      Mode mode = mem.read32(payload.data + 4) == 0 ? Mode::Shared : Mode::Exclusive;
      std::uint32_t owner = mem.read32(payload.data + 8);
      std::uint32_t grant_mb = mem.read32(payload.data + 12);
      std::vector<std::uint8_t> name_bytes(payload.len - 16);
      mem.read(payload.data + 16, name_bytes);
      std::string name(name_bytes.begin(), name_bytes.end());
      LockState& l = locks_[name];

      switch (op) {
        case kOpAcquire:
          if (compatible(l, mode)) {
            l.holders.push_back({owner, mode});
            ++grants_;
            status = kGranted;
          } else {
            l.waiters.push_back({info.client_node, grant_mb, owner, mode});
            ++queued_waits_;
            status = kQueued;
          }
          break;
        case kOpTryAcquire:
          if (compatible(l, mode)) {
            l.holders.push_back({owner, mode});
            ++grants_;
            status = kGranted;
          } else {
            status = kWouldBlock;
          }
          break;
        case kOpRelease: {
          auto it = std::find_if(l.holders.begin(), l.holders.end(),
                                 [owner](const Owner& o) { return o.owner_id == owner; });
          if (it == l.holders.end()) {
            status = kNotHeld;
          } else {
            l.holders.erase(it);
            status = kGranted;
            promote_waiters(l);
          }
          break;
        }
        default:
          break;
      }
    }
    service_.end_get(payload);

    core::Message rsp = service_.begin_put(4);
    mem.write32(rsp.data, status);
    reqresp_.respond(info, rsp);
  }
}

// --- LockClient -----------------------------------------------------------------

LockClient::LockClient(core::CabRuntime& rt, nproto::ReqResp& reqresp, core::MailboxAddr server,
                       std::uint32_t owner_id)
    : rt_(rt),
      reqresp_(reqresp),
      server_(server),
      owner_id_(owner_id),
      scratch_(rt.create_mailbox("lock-client-" + std::to_string(owner_id))),
      grants_(rt.create_mailbox("lock-grants-" + std::to_string(owner_id))) {}

std::uint32_t LockClient::call(std::uint32_t op, const std::string& name,
                               LockServer::Mode mode) {
  hw::CabMemory& mem = rt_.board().memory();
  core::Message req = scratch_.begin_put(static_cast<std::uint32_t>(16 + name.size()));
  mem.write32(req.data, op);
  mem.write32(req.data + 4, mode == LockServer::Mode::Shared ? 0 : 1);
  mem.write32(req.data + 8, owner_id_);
  mem.write32(req.data + 12, grants_.address().index);
  mem.write(req.data + 16,
            std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(name.data()),
                                          name.size()));
  core::Message rsp = reqresp_.call(server_, req);
  std::uint32_t status = rsp.len >= 4 ? mem.read32(rsp.data) : LockServer::kBadRequest;
  scratch_.end_get(rsp);
  return status;
}

bool LockClient::acquire(const std::string& name, LockServer::Mode mode) {
  std::uint32_t status = call(LockServer::kOpAcquire, name, mode);
  if (status == LockServer::kGranted) return true;
  if (status != LockServer::kQueued) return false;
  // Wait for the deferred grant to arrive over RMP.
  core::Message g = grants_.begin_get();
  bool ok = g.len >= 4 && rt_.board().memory().read32(g.data) == LockServer::kGranted;
  grants_.end_get(g);
  return ok;
}

bool LockClient::try_acquire(const std::string& name, LockServer::Mode mode) {
  return call(LockServer::kOpTryAcquire, name, mode) == LockServer::kGranted;
}

bool LockClient::release(const std::string& name) {
  return call(LockServer::kOpRelease, name, LockServer::Mode::Shared) == LockServer::kGranted;
}

}  // namespace nectar::nectarine
