#include "nectarine/cab_api.hpp"

#include <gtest/gtest.h>

#include "host/node.hpp"

namespace nectar::nectarine {
namespace {

TEST(CabNectarineTest, SameInterfaceMailboxRoundTrip) {
  net::NectarSystem sys(2);
  CabNectarine nin(sys.runtime(0), sys.stack(0).datagram, sys.stack(0).rmp,
                   sys.stack(0).reqresp);
  std::string got;
  sys.runtime(0).fork_app("t", [&] {
    auto mb = nin.create_mailbox("ipc");
    core::Message m = nin.begin_put(mb, 5);
    const char* text = "hello";
    nin.write_message(m, std::span<const std::uint8_t>(
                             reinterpret_cast<const std::uint8_t*>(text), 5));
    nin.end_put(mb, m);
    core::Message g = nin.begin_get(mb);
    std::vector<std::uint8_t> buf(g.len);
    nin.read_message(g, buf);
    got.assign(buf.begin(), buf.end());
    nin.end_get(mb, g);
  });
  sys.engine().run();
  EXPECT_EQ(got, "hello");
}

TEST(CabNectarineTest, ReliableSendAcrossNodes) {
  net::NectarSystem sys(2);
  CabNectarine nin0(sys.runtime(0), sys.stack(0).datagram, sys.stack(0).rmp,
                    sys.stack(0).reqresp);
  CabNectarine nin1(sys.runtime(1), sys.stack(1).datagram, sys.stack(1).rmp,
                    sys.stack(1).reqresp);
  core::Mailbox& inbox = sys.runtime(1).create_mailbox("in");
  std::string got;
  sys.runtime(1).fork_app("rx", [&] {
    auto mb = nin1.attach(inbox);
    core::Message m = nin1.begin_get(mb);
    std::vector<std::uint8_t> buf(m.len);
    nin1.read_message(m, buf);
    got.assign(buf.begin(), buf.end());
    nin1.end_get(mb, m);
  });
  sys.runtime(0).fork_app("tx", [&] {
    auto s = nin0.create_mailbox("s");
    core::Message m = nin0.begin_put(s, 8);
    const char* text = "reliable";
    nin0.write_message(m, std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(text), 8));
    nin0.send_reliable(inbox.address(), m);
  });
  sys.engine().run();
  EXPECT_EQ(got, "reliable");
}

TEST(CabNectarineTest, RemoteTaskStartMirrorsHostApi) {
  // The same start_remote_task call shape as HostNectarine — here issued
  // from a CAB task instead of a host process.
  net::NectarSystem sys(2, /*with_vme=*/true);
  host::HostNode h0(sys, 0), h1(sys, 1);
  CabNectarine nin(sys.runtime(0), sys.stack(0).datagram, sys.stack(0).rmp,
                   sys.stack(0).reqresp);
  std::uint32_t ran_with = 0;
  h1.services.register_task("job", [&](std::uint32_t a) { ran_with = a; });
  bool ok = false;
  sys.runtime(0).fork_app("spawner", [&] {
    ok = nin.start_remote_task(h1.services.service_address(), "job", 777);
  });
  sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(ok);
  EXPECT_EQ(ran_with, 777u);
}

TEST(CabNectarineTest, UnknownTaskReturnsFalse) {
  net::NectarSystem sys(2, /*with_vme=*/true);
  host::HostNode h0(sys, 0), h1(sys, 1);
  CabNectarine nin(sys.runtime(0), sys.stack(0).datagram, sys.stack(0).rmp,
                   sys.stack(0).reqresp);
  bool ok = true;
  sys.runtime(0).fork_app("spawner", [&] {
    ok = nin.start_remote_task(h1.services.service_address(), "missing", 0);
  });
  sys.net().run_until(sim::sec(2));
  EXPECT_FALSE(ok);
}

TEST(CabNectarineTest, OversizeWriteThrows) {
  net::NectarSystem sys(1);
  CabNectarine nin(sys.runtime(0), sys.stack(0).datagram, sys.stack(0).rmp,
                   sys.stack(0).reqresp);
  bool threw = false;
  sys.runtime(0).fork_app("t", [&] {
    auto mb = nin.create_mailbox("m");
    core::Message m = nin.begin_put(mb, 4);
    std::vector<std::uint8_t> big(10);
    try {
      nin.write_message(m, big);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    nin.end_put(mb, m);
    nin.end_get(mb, nin.begin_get(mb));
  });
  sys.engine().run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace nectar::nectarine
