#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "scenario/engine.hpp"

namespace nectar::scenario {
namespace {

// Continuous telemetry contract ([telemetry] section, docs/OBSERVABILITY.md):
//   * sampling is pull-based, so a single-shard telemetry-on run executes the
//     same event stream as a telemetry-off run;
//   * the time-series artifact is a pure function of (spec, seed, shards,
//     interval) — byte-identical across runs, including under [parallel];
//   * the conservation auditor holds on a healthy run, fault burst included.

constexpr const char* kBase = R"(
[scenario]
name = telem
duration = 200ms

[topology]
kind = dual_hub
nodes = 8

[workload]
name = udp
proto = udp
mode = open
users = 40
rate = 10
size_min = 64
size_max = 512
stride = 3

[workload]
name = rmp
proto = rmp
mode = closed
users = 2
think = 5ms
size = 128
stride = 2

[fault]
kind = link_drop
target = node1.link
at = 60ms
duration = 50ms
rate = 0.5
)";

ScenarioSpec spec_with_telemetry(bool telemetry, int shards = 1,
                                 std::uint64_t seed = 7) {
  ScenarioSpec spec = ScenarioSpec::from_config(Config::parse_string(kBase));
  spec.seed = seed;
  spec.parallel.shards = shards;
  spec.telemetry.enabled = telemetry;
  spec.telemetry.interval = sim::msec(10);
  return spec;
}

TEST(ScenarioTelemetry, ConfigSectionParses) {
  ScenarioSpec spec = ScenarioSpec::from_config(Config::parse_string(R"(
[telemetry]
enabled = yes
interval = 5ms
artifact = ts.json
audit = no
audit_artifact = audit.json
max_samples = 128
include = sim.parallel, workload
)"));
  EXPECT_TRUE(spec.telemetry.enabled);
  EXPECT_EQ(spec.telemetry.interval, sim::msec(5));
  EXPECT_EQ(spec.telemetry.artifact, "ts.json");
  EXPECT_FALSE(spec.telemetry.audit);
  EXPECT_EQ(spec.telemetry.audit_artifact, "audit.json");
  EXPECT_EQ(spec.telemetry.max_samples, 128);
  ASSERT_EQ(spec.telemetry.include.size(), 2u);
  EXPECT_EQ(spec.telemetry.include[0], "sim.parallel");
  EXPECT_EQ(spec.telemetry.include[1], "workload");
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[telemetry]\ninterval = 0ms\n")),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[telemetry]\ncadence = 1ms\n")),
               std::runtime_error);
}

TEST(ScenarioTelemetry, SamplingIsNeutralToTheRun) {
  Scenario off(spec_with_telemetry(false));
  off.run();
  Scenario on(spec_with_telemetry(true));
  on.run();
  ASSERT_NE(on.sampler(), nullptr);
  ASSERT_NE(on.auditor(), nullptr);
  EXPECT_EQ(off.sampler(), nullptr);
  // Same deliveries, drops, event counts: the sampler never scheduled.
  for (std::size_t i = 0; i < off.workloads().size(); ++i) {
    EXPECT_EQ(off.workloads()[i]->delivered(), on.workloads()[i]->delivered());
    EXPECT_EQ(off.workloads()[i]->sent(), on.workloads()[i]->sent());
  }
  EXPECT_EQ(off.faults().network_drops(), on.faults().network_drops());
  EXPECT_EQ(off.net().engine().events_processed(), on.net().engine().events_processed());
}

TEST(ScenarioTelemetry, ArtifactIsByteIdenticalAcrossRuns) {
  auto artifact = [] {
    Scenario sc(spec_with_telemetry(true));
    sc.run();
    return sc.sampler()->artifact("telem").dump(2);
  };
  std::string a = artifact();
  EXPECT_GT(a.size(), 0u);
  EXPECT_EQ(a, artifact());
}

TEST(ScenarioTelemetry, ArtifactIsByteIdenticalAcrossRunsAtFourShards) {
  auto artifact = [] {
    Scenario sc(spec_with_telemetry(true, 4));
    sc.run();
    return sc.sampler()->artifact("telem").dump(2);
  };
  std::string a = artifact();
  // The wall-clock probes (work_ns / barrier_wait_ns) are excluded by
  // default, so even the sharded artifact must reproduce byte-for-byte.
  EXPECT_NE(a.find("sim.parallel"), std::string::npos);
  EXPECT_EQ(a, artifact());
}

TEST(ScenarioTelemetry, AuditorHoldsThroughAFaultBurst) {
  Scenario sc(spec_with_telemetry(true));
  sc.run();  // throws on any conservation violation
  const obs::Auditor& a = *sc.auditor();
  EXPECT_TRUE(a.ok());
  EXPECT_GT(a.invariants(), 0u);
  // 21 ticks (t=0 plus 20 intervals) plus the finalize pass.
  EXPECT_EQ(a.ticks(), 22u);
  EXPECT_GE(a.checks_run(), a.invariants() * 22);
}

TEST(ScenarioTelemetry, FaultWindowsBecomeMarks) {
  Scenario sc(spec_with_telemetry(true));
  sc.run();
  const auto& marks = sc.sampler()->marks();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0].kind, "fault");
  EXPECT_NE(marks[0].label.find("link_drop"), std::string::npos);
  EXPECT_GE(marks[0].t, sim::msec(60));  // applied_at includes derived jitter
  EXPECT_GT(marks[0].end, marks[0].t);
}

TEST(ScenarioTelemetry, ReportCarriesTelemetryRows) {
  Scenario sc(spec_with_telemetry(true));
  sc.run();
  std::string rep = sc.report().to_json_string();
  EXPECT_NE(rep.find("telemetry.samples"), std::string::npos);
  EXPECT_NE(rep.find("audit.violations"), std::string::npos);
  // Telemetry off: no rows, so pre-existing reports stay byte-identical.
  Scenario off(spec_with_telemetry(false));
  off.run();
  EXPECT_EQ(off.report().to_json_string().find("telemetry."), std::string::npos);
}

}  // namespace
}  // namespace nectar::scenario
