#pragma once

// Session-layer wire format: the compact per-channel frame header that
// multiplexes thousands of logical channels over one trunk connection
// (docs/SESSIONS.md). Every trunk message is a sequence of frames, each a
// 10-byte header optionally followed by `length` payload bytes; the single
// -frame fast path instead composes this header through the HeaderBuf
// headroom path (Rmp prefix headers), so the common case stays
// allocation-free end to end.

#include <cstdint>
#include <span>
#include <string>

namespace nectar::session {

/// Frame discriminator. Open/Close/Data travel initiator → responder;
/// OpenAck/OpenNak/CloseAck/Credit/Reset travel responder → initiator. All
/// frames carry the *initiator's* channel id, so each direction of a trunk
/// has its own id space and the two never collide.
enum class FrameType : std::uint8_t {
  Open = 1,      ///< open a channel; seq carries (priority << 8) | weight
  OpenAck = 2,   ///< accepted; credit carries the initial grant
  OpenNak = 3,   ///< refused (admission); seq carries a reason code
  Close = 4,     ///< orderly close after all data
  CloseAck = 5,  ///< close confirmed; the id may now be reused (generation+1)
  Data = 6,      ///< seq = per-channel sequence, length = payload bytes
  Credit = 7,    ///< flow-control replenishment; credit = messages granted
  Reset = 8,     ///< abortive teardown; seq carries a reason code
};

const char* frame_type_name(FrameType t);

/// Refusal / reset reason codes (OpenNak.seq, Reset.seq).
enum class SessionReason : std::uint16_t {
  kNone = 0,
  kAdmissionFull = 1,  ///< per-trunk max_channels reached
  kBadGeneration = 2,  ///< frame for a dead incarnation of a reused id
  kUnknownChannel = 3,
  kTrunkFailed = 4,
};

/// One session frame header. 10 bytes on the wire, big-endian like every
/// other Nectar header (proto/headers.hpp).
struct FrameHeader {
  static constexpr std::size_t kSize = 10;

  std::uint16_t channel = 0;    ///< initiator-side channel id within the trunk
  std::uint8_t generation = 0;  ///< churn-safe reuse tag; must match both ends
  FrameType type = FrameType::Data;
  std::uint16_t seq = 0;     ///< Data: sequence; Open: priority/weight; Nak/Reset: reason
  std::uint16_t credit = 0;  ///< OpenAck/Credit: message grant
  std::uint16_t length = 0;  ///< Data: payload bytes following this header

  void serialize(std::span<std::uint8_t> out) const;
  static FrameHeader parse(std::span<const std::uint8_t> in);

  /// Open frames pack the channel's scheduling class and weight into seq.
  static std::uint16_t pack_open_params(std::uint8_t priority, std::uint8_t weight) {
    return static_cast<std::uint16_t>((priority << 8) | weight);
  }
  std::uint8_t open_priority() const { return static_cast<std::uint8_t>(seq >> 8); }
  std::uint8_t open_weight() const { return static_cast<std::uint8_t>(seq & 0xff); }

  std::string describe() const;
};

}  // namespace nectar::session
