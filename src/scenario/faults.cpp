#include "scenario/faults.hpp"

#include <cstdio>
#include <stdexcept>

namespace nectar::scenario {

FaultKind FaultSpec::parse_kind(const std::string& name) {
  if (name == "link_drop") return FaultKind::LinkDrop;
  if (name == "link_corrupt") return FaultKind::LinkCorrupt;
  if (name == "link_down") return FaultKind::LinkDown;
  if (name == "link_drop_burst") return FaultKind::LinkDropBurst;
  if (name == "hub_blackout") return FaultKind::HubBlackout;
  if (name == "vme_stall") return FaultKind::VmeStall;
  if (name == "cab_crash") return FaultKind::CabCrash;
  throw std::invalid_argument("fault: unknown kind '" + name + "'");
}

std::string FaultSpec::describe() const {
  const char* names[] = {"link_drop",    "link_corrupt", "link_down", "link_drop_burst",
                         "hub_blackout", "vme_stall",    "cab_crash"};
  std::string s = names[static_cast<int>(kind)];
  s += "(" + target;
  if (kind == FaultKind::LinkDrop || kind == FaultKind::LinkCorrupt) {
    char buf[32];
    std::snprintf(buf, sizeof buf, ", rate=%g", rate);
    s += buf;
  }
  if (kind == FaultKind::LinkDropBurst) s += ", count=" + std::to_string(count);
  s += ")";
  return s;
}

FaultScheduler::FaultScheduler(net::Network& net, std::uint64_t master_seed)
    : net_(net), master_seed_(master_seed) {}

namespace {

/// Parse "prefix<number>" returning the number, or -1 on mismatch.
int parse_indexed(const std::string& s, const char* prefix) {
  std::size_t n = std::char_traits<char>::length(prefix);
  if (s.rfind(prefix, 0) != 0 || s.size() == n) return -1;
  int v = 0;
  for (std::size_t i = n; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return -1;
    v = v * 10 + (s[i] - '0');
  }
  return v;
}

}  // namespace

FaultScheduler::Target FaultScheduler::resolve(const FaultSpec& spec) const {
  Target t;
  std::size_t dot = spec.target.find('.');
  if (dot == std::string::npos) {
    throw std::invalid_argument("fault: bad target '" + spec.target +
                                "' (want node<i>.link|vme|cab or hub<h>.port<p>)");
  }
  std::string head = spec.target.substr(0, dot);
  std::string tail = spec.target.substr(dot + 1);
  int node = parse_indexed(head, "node");
  int hub = parse_indexed(head, "hub");
  if (node >= 0) {
    if (node >= net_.cab_count()) {
      throw std::invalid_argument("fault: no such node in '" + spec.target + "'");
    }
    t.engine = &net_.engine_of_node(node);
    if (tail == "link") {
      t.link = &net_.cab(node).out_link();
    } else if (tail == "vme") {
      t.vme = net_.vme(node);
      if (t.vme == nullptr) {
        throw std::invalid_argument("fault: " + spec.target + ": node has no VME bus");
      }
    } else if (tail == "cab") {
      // Crash isolates the board both ways: its transmitter and the HUB
      // output port that feeds its inbound fiber.
      t.link = &net_.cab(node).out_link();
      t.hub = &net_.hub(net_.cab_hub(node));
      t.port = net_.cab_port(node);
    } else {
      throw std::invalid_argument("fault: bad element '" + tail + "' in '" + spec.target + "'");
    }
    return t;
  }
  if (hub >= 0) {
    if (hub >= net_.hub_count()) {
      throw std::invalid_argument("fault: no such hub in '" + spec.target + "'");
    }
    int port = parse_indexed(tail, "port");
    if (port < 0 || port >= net_.hub(hub).num_ports()) {
      throw std::invalid_argument("fault: bad port in '" + spec.target + "'");
    }
    t.hub = &net_.hub(hub);
    t.port = port;
    t.engine = &net_.hub_engine(hub);
    return t;
  }
  throw std::invalid_argument("fault: bad target '" + spec.target + "'");
}

std::size_t FaultScheduler::schedule(const FaultSpec& spec) {
  Target target = resolve(spec);  // validate before arming anything

  // Kind-specific sanity.
  if ((spec.kind == FaultKind::LinkDrop || spec.kind == FaultKind::LinkCorrupt) &&
      (spec.rate < 0.0 || spec.rate > 1.0)) {
    throw std::invalid_argument("fault: rate must be in [0,1]");
  }
  if (spec.kind == FaultKind::VmeStall && spec.duration <= 0) {
    throw std::invalid_argument("fault: vme_stall needs duration > 0");
  }
  bool wants_link = spec.kind == FaultKind::LinkDrop || spec.kind == FaultKind::LinkCorrupt ||
                    spec.kind == FaultKind::LinkDown || spec.kind == FaultKind::LinkDropBurst;
  if (wants_link && target.link == nullptr) {
    throw std::invalid_argument("fault: " + spec.describe() + " needs a node<i>.link target");
  }
  if (spec.kind == FaultKind::HubBlackout && (target.hub == nullptr || target.port < 0)) {
    throw std::invalid_argument("fault: hub_blackout needs a hub<h>.port<p> target");
  }
  if (spec.kind == FaultKind::CabCrash && target.hub == nullptr) {
    throw std::invalid_argument("fault: cab_crash needs a node<i>.cab target");
  }

  std::size_t idx = records_.size();
  FaultRecord rec;
  rec.spec = spec;
  rec.applied_at = spec.at;
  if (spec.jitter > 0) {
    sim::Random rng(sim::derive_seed(master_seed_, "fault" + std::to_string(idx) + "/jitter"));
    rec.applied_at += static_cast<sim::SimTime>(
        rng.next_below(static_cast<std::uint64_t>(spec.jitter)));
  }
  records_.push_back(rec);
  targets_.push_back(target);

  // Arm on the target's shard engine: apply/clear then run on the worker
  // thread that owns the element, racing with nothing.
  target.engine->schedule_at(rec.applied_at, [this, idx] { apply(idx); });
  bool windowed = spec.kind != FaultKind::LinkDropBurst && spec.kind != FaultKind::VmeStall;
  if (windowed && spec.duration > 0) {
    target.engine->schedule_at(rec.applied_at + spec.duration, [this, idx] { clear(idx); });
  }
  return idx;
}

std::uint64_t FaultScheduler::target_drops(std::size_t idx) const {
  const Target& t = targets_[idx];
  std::uint64_t n = 0;
  if (t.link != nullptr) n += t.link->frames_dropped();
  if (t.hub != nullptr) n += t.hub->blackout_drops();
  return n;
}

void FaultScheduler::apply(std::size_t idx) {
  FaultRecord& rec = records_[idx];
  Target& t = targets_[idx];
  rec.drops_before = target_drops(idx);
  switch (rec.spec.kind) {
    case FaultKind::LinkDrop:
      t.link->set_drop_rate(rec.spec.rate);  // seed derived from master + link name
      break;
    case FaultKind::LinkCorrupt:
      t.link->set_corrupt_rate(rec.spec.rate);
      break;
    case FaultKind::LinkDown:
      t.link->set_down(true);
      break;
    case FaultKind::LinkDropBurst:
      t.link->arm_drop_next(rec.spec.count);
      break;
    case FaultKind::HubBlackout:
      t.hub->set_port_blackout(t.port, true);
      break;
    case FaultKind::VmeStall:
      t.vme->stall_for(rec.spec.duration);
      rec.cleared_at = rec.applied_at + rec.spec.duration;
      break;
    case FaultKind::CabCrash:
      t.link->set_down(true);
      t.hub->set_port_blackout(t.port, true);
      break;
  }
}

void FaultScheduler::clear(std::size_t idx) {
  FaultRecord& rec = records_[idx];
  Target& t = targets_[idx];
  switch (rec.spec.kind) {
    case FaultKind::LinkDrop:
      t.link->set_drop_rate(0.0);
      break;
    case FaultKind::LinkCorrupt:
      t.link->set_corrupt_rate(0.0);
      break;
    case FaultKind::LinkDown:
      t.link->set_down(false);
      break;
    case FaultKind::HubBlackout:
      t.hub->set_port_blackout(t.port, false);
      break;
    case FaultKind::CabCrash:
      t.link->set_down(false);
      t.hub->set_port_blackout(t.port, false);
      break;
    case FaultKind::LinkDropBurst:
    case FaultKind::VmeStall:
      return;  // no window to close
  }
  rec.cleared_at = targets_[idx].engine->now();  // clear runs on this engine
  rec.attributed_drops = target_drops(idx) - rec.drops_before;
}

void FaultScheduler::finalize() {
  // Called after the run: every shard's clock has settled to the stop time
  // (ParallelEngine::run_until ends with a per-shard run_until(t)), so
  // shard 0's now() is the run-wide end time regardless of shard count.
  for (std::size_t i = 0; i < records_.size(); ++i) {
    FaultRecord& rec = records_[i];
    if (net_.engine().now() < rec.applied_at) continue;  // never fired
    if (rec.cleared_at < 0 || rec.spec.kind == FaultKind::LinkDropBurst) {
      // Still-open window (or a burst, which has no close event): attribute
      // the target element's drops since injection. Overlapping faults on
      // the same element double-count by design — attribution answers "what
      // was lost at this element while the fault was live".
      rec.attributed_drops = target_drops(i) - rec.drops_before;
      if (rec.cleared_at < 0) rec.cleared_at = net_.engine().now();
    }
  }
}

std::uint64_t FaultScheduler::total_attributed_drops() const {
  std::uint64_t n = 0;
  for (const FaultRecord& r : records_) n += r.attributed_drops;
  return n;
}

std::uint64_t FaultScheduler::network_drops() const {
  std::uint64_t n = 0;
  for (int i = 0; i < net_.cab_count(); ++i) {
    n += net_.cab(i).out_link().frames_dropped();
  }
  for (int h = 0; h < net_.hub_count(); ++h) {
    n += net_.hub(h).blackout_drops() + net_.hub(h).route_errors();
  }
  return n;
}

}  // namespace nectar::scenario
