#include "obs/audit.hpp"

#include <numeric>
#include <stdexcept>

namespace nectar::obs {

void Auditor::add(std::string invariant, std::string component, Check fn) {
  checks_.push_back(Entry{std::move(invariant), std::move(component), std::move(fn)});
}

void Auditor::add_final(std::string invariant, std::string component, Check fn) {
  final_checks_.push_back(Entry{std::move(invariant), std::move(component), std::move(fn)});
}

void Auditor::check(sim::SimTime t) {
  ++ticks_;
  run_checks(t, checks_);
  histogram_builtin(t);
}

void Auditor::finalize(sim::SimTime t) {
  check(t);
  run_checks(t, final_checks_);
}

void Auditor::run_checks(sim::SimTime t, std::vector<Entry>& entries) {
  for (Entry& e : entries) {
    ++checks_run_;
    std::string detail = e.fn();
    if (!detail.empty()) record(t, e.invariant, e.component, std::move(detail));
  }
}

void Auditor::histogram_builtin(sim::SimTime t) {
  if (registry_ == nullptr) return;
  Snapshot snap = registry_->snapshot();
  for (const SnapshotEntry& e : snap.entries()) {
    if (e.kind != SnapshotEntry::Kind::Histogram) continue;
    ++checks_run_;
    std::uint64_t bucket_sum =
        std::accumulate(e.buckets.begin(), e.buckets.end(), std::uint64_t{0});
    if (bucket_sum != e.count) {
      record(t, "histogram.buckets==count", e.key.str(),
             "bucket_sum=" + std::to_string(bucket_sum) + " count=" + std::to_string(e.count));
    }
  }
}

void Auditor::record(sim::SimTime t, const std::string& invariant, const std::string& component,
                     std::string detail) {
  auto [it, inserted] = index_.try_emplace({invariant, component}, violations_.size());
  if (inserted) {
    violations_.push_back(Violation{t, invariant, component, std::move(detail), 1});
  } else {
    ++violations_[it->second].occurrences;  // keep the first interval's detail
  }
}

json::Value Auditor::report_json() const {
  json::Value doc = json::Value::object();
  doc.set("schema", "nectar-audit");
  doc.set("version", std::int64_t{1});
  doc.set("ok", violations_.empty());
  doc.set("invariants", static_cast<std::int64_t>(invariants()));
  doc.set("ticks", static_cast<std::int64_t>(ticks_));
  doc.set("checks_run", static_cast<std::int64_t>(checks_run_));
  json::Value vs = json::Value::array();
  for (const Violation& v : violations_) {
    json::Value e = json::Value::object();
    e.set("t_ns", v.t);
    e.set("invariant", v.invariant);
    e.set("component", v.component);
    e.set("detail", v.detail);
    e.set("occurrences", static_cast<std::int64_t>(v.occurrences));
    vs.push(std::move(e));
  }
  doc.set("violations", std::move(vs));
  return doc;
}

void Auditor::throw_if_failed() const {
  if (violations_.empty()) return;
  const Violation& v = violations_.front();
  throw std::runtime_error("audit: " + std::to_string(violations_.size()) +
                           " invariant violation(s); first: [" + v.invariant + "] " +
                           v.component + " at t=" + std::to_string(v.t) + "ns: " + v.detail);
}

}  // namespace nectar::obs
