#include "net/system.hpp"

#include <stdexcept>

namespace nectar::net {

NectarSystem::NectarSystem(int num_cabs, bool with_vme, const proto::TcpConfig& tcp_config,
                           std::size_t mtu) {
  if (num_cabs < 1 || num_cabs > 16) {
    throw std::invalid_argument("NectarSystem: one 16x16 HUB holds 1..16 CABs");
  }
  int hub = net_.add_hub(16);
  for (int i = 0; i < num_cabs; ++i) net_.add_cab(hub, i, with_vme);
  net_.install_routes();
  for (int i = 0; i < num_cabs; ++i) {
    stacks_.push_back(std::make_unique<NodeStack>(net_, i, tcp_config, mtu));
  }
}

}  // namespace nectar::net
