#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nectar::obs {
namespace {

Sampler::Options opts(sim::SimTime interval = sim::msec(1), std::size_t max_samples = 4096) {
  Sampler::Options o;
  o.interval = interval;
  o.max_samples = max_samples;
  return o;
}

TEST(Sampler, DeltaEncodesCounters) {
  MetricsRegistry reg;
  Counter& c = reg.counter(0, "tcp", "segments");
  Sampler s(reg, opts());
  s.sample(0);
  c.inc(5);
  s.sample(sim::msec(1));
  c.inc(2);
  s.sample(sim::msec(2));
  EXPECT_EQ(s.samples(), 3u);
  EXPECT_EQ(s.series_count(), 1u);

  json::Value doc = s.artifact("t");
  const json::Value& series = *doc.find("series");
  ASSERT_EQ(series.size(), 1u);
  const json::Value& row = series.at(0);
  EXPECT_EQ(row.find("component")->as_string(), "tcp");
  EXPECT_EQ(row.find("name")->as_string(), "segments");
  EXPECT_EQ(row.find("first")->as_int(), 0);
  const json::Value& deltas = *row.find("deltas");
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas.at(0).as_int(), 5);
  EXPECT_EQ(deltas.at(1).as_int(), 2);
}

TEST(Sampler, HistogramsSplitIntoCountAndSum) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram(0, "dl", "bytes", {100, 200});
  Sampler s(reg, opts());
  s.sample(0);
  h.observe(50);
  h.observe(150);
  s.sample(sim::msec(1));
  EXPECT_EQ(s.series_count(), 2u);  // .count and .sum streams

  json::Value doc = s.artifact("t");
  const json::Value& series = *doc.find("series");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series.at(0).find("field")->as_string(), "count");
  EXPECT_EQ(series.at(0).find("deltas")->at(0).as_int(), 2);
  EXPECT_EQ(series.at(1).find("field")->as_string(), "sum");
  EXPECT_EQ(series.at(1).find("deltas")->at(0).as_int(), 200);
}

TEST(Sampler, RingEvictsOldestAndFoldsBase) {
  MetricsRegistry reg;
  Counter& c = reg.counter(0, "x", "n");
  Sampler s(reg, opts(sim::msec(1), 3));
  for (int i = 0; i < 6; ++i) {
    s.sample(sim::msec(i));
    c.inc(1);
  }
  EXPECT_EQ(s.samples(), 6u);
  EXPECT_EQ(s.retained(), 3u);
  EXPECT_EQ(s.dropped(), 3u);
  json::Value doc = s.artifact("t");
  // Retained window is ticks 3..5 with values 3,4,5: base folded to 3.
  const json::Value& row = doc.find("series")->at(0);
  EXPECT_EQ(row.find("first")->as_int(), 3);
  const json::Value& deltas = *row.find("deltas");
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas.at(0).as_int(), 1);
  EXPECT_EQ(deltas.at(1).as_int(), 1);
  EXPECT_EQ(doc.find("t_ns")->size(), 3u);
}

TEST(Sampler, LateSeriesStartsAtItsFirstTick) {
  MetricsRegistry reg;
  reg.counter(0, "a", "early").inc();
  Sampler s(reg, opts());
  s.sample(0);
  s.sample(sim::msec(1));
  reg.counter(0, "b", "late").inc(7);
  s.sample(sim::msec(2));
  json::Value doc = s.artifact("t");
  const json::Value& series = *doc.find("series");
  ASSERT_EQ(series.size(), 2u);
  // Key-sorted: a.early first, b.late second.
  EXPECT_EQ(series.at(0).find("start")->as_int(), 0);
  EXPECT_EQ(series.at(1).find("name")->as_string(), "late");
  EXPECT_EQ(series.at(1).find("start")->as_int(), 2);
  EXPECT_EQ(series.at(1).find("first")->as_int(), 7);
}

TEST(Sampler, ExcludesHostSideSeriesByDefault) {
  MetricsRegistry reg;
  Registration r(reg);
  r.probe(-1, "sim.parallel", "shard0.work_ns", [] { return 123; });
  r.probe(-1, "sim.parallel", "shard0.barrier_wait_ns", [] { return 5; });
  r.probe(-1, "hw.framepool", "acquires", [] { return 9; });
  r.probe(-1, "proto.hdrpool", "pooled", [] { return 2; });
  reg.counter(-1, "sim.parallel", "windows").inc();
  Sampler s(reg, opts());
  s.sample(0);
  EXPECT_EQ(s.series_count(), 1u);  // only "windows" survives
}

TEST(Sampler, IncludeFilterKeepsOnlyMatchingSeries) {
  MetricsRegistry reg;
  reg.counter(-1, "sim.parallel", "shard0.events").inc();
  reg.counter(-1, "sim.parallel", "windows").inc();
  reg.counter(0, "tcp", "segments").inc();
  // Exclusions still apply on top of the include list.
  Registration r(reg);
  r.probe(-1, "sim.parallel", "shard0.work_ns", [] { return 42; });
  Sampler::Options o = opts();
  o.include = {"sim.parallel"};
  Sampler s(reg, o);
  s.sample(0);
  EXPECT_EQ(s.series_count(), 2u);  // the two shard counters, nothing else
}

TEST(Sampler, RejectsDecreasingTicksAndZeroCapacity) {
  MetricsRegistry reg;
  Sampler s(reg, opts());
  s.sample(sim::msec(5));
  EXPECT_THROW(s.sample(sim::msec(4)), std::logic_error);
  Sampler::Options bad;
  bad.max_samples = 0;
  EXPECT_THROW(Sampler(reg, bad), std::invalid_argument);
}

TEST(Sampler, MarksSortDeterministically) {
  MetricsRegistry reg;
  Sampler s(reg, opts());
  s.mark(sim::msec(9), "fault", "late");
  s.mark(sim::msec(1), "fault", "window", sim::msec(3));
  s.mark(sim::msec(1), "failover", "node0->1 path1");
  json::Value doc = s.artifact("t");
  const json::Value& marks = *doc.find("marks");
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_EQ(marks.at(0).find("kind")->as_string(), "failover");
  EXPECT_EQ(marks.at(1).find("label")->as_string(), "window");
  EXPECT_EQ(marks.at(1).find("end_ns")->as_int(), sim::msec(3));
  EXPECT_EQ(marks.at(2).find("label")->as_string(), "late");
  EXPECT_FALSE(marks.at(2).has("end_ns"));  // instant, not window
}

TEST(Sampler, ArtifactIsByteDeterministic) {
  auto run = [] {
    MetricsRegistry reg;
    Counter& c = reg.counter(0, "tcp", "segs");
    Gauge& g = reg.gauge(1, "mbox", "depth");
    Histogram& h = reg.histogram(0, "dl", "bytes", {100});
    Sampler s(reg, opts());
    for (int i = 0; i < 20; ++i) {
      c.inc(static_cast<std::uint64_t>(i));
      g.set(i % 3 - 1);
      h.observe(i * 50);
      s.sample(sim::msec(i));
    }
    s.mark(sim::msec(7), "fault", "x", sim::msec(9));
    return s.artifact("det").dump(2);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace nectar::obs
