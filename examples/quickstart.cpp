// Quickstart: the smallest complete Nectar program.
//
// Builds a two-node Nectar (two CABs on one 16x16 HUB), runs a CAB thread on
// each node, and exchanges a reliable message through a network-addressed
// mailbox — the paper's §3.3 zero-copy mailbox interface over the §4
// reliable message protocol. Everything runs on the deterministic simulated
// clock; the printed times are simulated microseconds.
//
//   $ ./quickstart

#include <cstdio>
#include <string>

#include "net/system.hpp"

using namespace nectar;

int main() {
  // One HUB, two CABs, full protocol stacks, routes installed.
  net::NectarSystem sys(/*num_cabs=*/2);

  // A network-wide addressable mailbox on node 1 (§3.3).
  core::Mailbox& inbox = sys.runtime(1).create_mailbox("greetings");

  // Receiver: a CAB thread that blocks in Begin_Get until a message lands.
  sys.runtime(1).fork_app("receiver", [&] {
    core::Message m = inbox.begin_get();
    std::vector<std::uint8_t> bytes(m.len);
    sys.runtime(1).board().memory().read(m.data, bytes);
    std::printf("[%8.1f us] node 1 received %u bytes: \"%s\"\n",
                sim::to_usec(sys.engine().now()), m.len,
                std::string(bytes.begin(), bytes.end()).c_str());
    inbox.end_get(m);
  });

  // Sender: build the message in place (two-phase put) and ship it with the
  // reliable message protocol; the buffer is freed when the ACK arrives.
  sys.runtime(0).fork_app("sender", [&] {
    const std::string text = "hello from the communication processor";
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    core::Message m = scratch.begin_put(static_cast<std::uint32_t>(text.size()));
    sys.runtime(0).board().memory().write(
        m.data, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
    std::printf("[%8.1f us] node 0 sending %zu bytes via RMP\n",
                sim::to_usec(sys.engine().now()), text.size());
    sys.stack(0).rmp.send(inbox.address(), m);
    sys.stack(0).rmp.wait_acked(1);
    std::printf("[%8.1f us] node 0 got the acknowledgment\n",
                sim::to_usec(sys.engine().now()));
  });

  sys.engine().run();

  std::printf("\nstats: rmp sent=%llu delivered=%llu retransmissions=%llu\n",
              static_cast<unsigned long long>(sys.stack(0).rmp.messages_sent()),
              static_cast<unsigned long long>(sys.stack(1).rmp.messages_delivered()),
              static_cast<unsigned long long>(sys.stack(0).rmp.retransmissions()));
  return 0;
}
