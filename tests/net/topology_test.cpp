#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"

namespace nectar::net {
namespace {

TEST(Topology, SingleHubRoutesAreOneHop) {
  Network net;
  int hub = net.add_hub();
  int a = net.add_cab(hub, 3);
  int b = net.add_cab(hub, 9);
  net.install_routes();
  EXPECT_EQ(net.route(a, b), (std::vector<std::uint8_t>{9}));
  EXPECT_EQ(net.route(b, a), (std::vector<std::uint8_t>{3}));
  EXPECT_EQ(net.route(a, a), (std::vector<std::uint8_t>{3}));  // self via own port
}

TEST(Topology, TwoHubRoutesTraverseTrunk) {
  Network net;
  int h1 = net.add_hub();
  int h2 = net.add_hub();
  net.link_hubs(h1, 15, h2, 14);
  int a = net.add_cab(h1, 0);
  int b = net.add_cab(h2, 1);
  net.install_routes();
  EXPECT_EQ(net.route(a, b), (std::vector<std::uint8_t>{15, 1}));
  EXPECT_EQ(net.route(b, a), (std::vector<std::uint8_t>{14, 0}));
}

TEST(Topology, ThreeHubLineUsesShortestPath) {
  Network net;
  int h[3] = {net.add_hub(), net.add_hub(), net.add_hub()};
  net.link_hubs(h[0], 15, h[1], 15);
  net.link_hubs(h[1], 14, h[2], 15);
  int a = net.add_cab(h[0], 0);
  int c = net.add_cab(h[2], 2);
  net.install_routes();
  EXPECT_EQ(net.route(a, c), (std::vector<std::uint8_t>{15, 14, 2}));
}

TEST(Topology, MeshPrefersFewerHops) {
  // Triangle: direct trunk h0-h2 must beat the detour through h1.
  Network net;
  int h0 = net.add_hub(), h1 = net.add_hub(), h2 = net.add_hub();
  net.link_hubs(h0, 15, h1, 15);
  net.link_hubs(h1, 14, h2, 14);
  net.link_hubs(h0, 13, h2, 13);
  int a = net.add_cab(h0, 0);
  int b = net.add_cab(h2, 1);
  net.install_routes();
  EXPECT_EQ(net.route(a, b).size(), 2u);  // trunk + final port
  EXPECT_EQ(net.route(a, b)[0], 13);
}

TEST(Topology, DisconnectedHubsThrow) {
  Network net;
  int h1 = net.add_hub();
  int h2 = net.add_hub();
  int a = net.add_cab(h1, 0);
  int b = net.add_cab(h2, 0);
  (void)a;
  (void)b;
  EXPECT_THROW(net.install_routes(), std::logic_error);
}

TEST(Topology, PaperScaleDeployment) {
  // "Currently the prototype system consists of 2 HUBs and 26 hosts in
  // full-time use" (§6). 13 CABs per HUB + one trunk pair.
  Network net;
  int h1 = net.add_hub();
  int h2 = net.add_hub();
  net.link_hubs(h1, 15, h2, 15);
  std::vector<int> nodes;
  for (int i = 0; i < 13; ++i) nodes.push_back(net.add_cab(h1, i));
  for (int i = 0; i < 13; ++i) nodes.push_back(net.add_cab(h2, i));
  net.install_routes();
  EXPECT_EQ(net.cab_count(), 26);
  // Same-hub pairs: one route byte; cross-hub: two.
  EXPECT_EQ(net.route(0, 12).size(), 1u);
  EXPECT_EQ(net.route(0, 13).size(), 2u);
  EXPECT_EQ(net.route(25, 3).size(), 2u);
}

TEST(NectarSystemTest, RejectsMoreThanSixteenCabs) {
  EXPECT_THROW(NectarSystem sys(17), std::invalid_argument);
  EXPECT_THROW(NectarSystem sys(0), std::invalid_argument);
}

TEST(NectarSystemTest, EveryPairCanExchangeDatagrams) {
  NectarSystem sys(4);
  int delivered = 0;
  std::vector<core::Mailbox*> inboxes;
  for (int i = 0; i < 4; ++i) {
    inboxes.push_back(&sys.runtime(i).create_mailbox("in"));
  }
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      if (src == dst) continue;
      sys.runtime(src).fork_system("tx", [&sys, src, dst, &inboxes] {
        core::Mailbox& s = sys.runtime(src).create_mailbox("s");
        core::Message m = s.begin_put(16);
        sys.stack(src).datagram.send(inboxes[static_cast<std::size_t>(dst)]->address(), m);
      });
      sys.runtime(dst).fork_system("rx", [&sys, dst, &inboxes, &delivered] {
        core::Message m = inboxes[static_cast<std::size_t>(dst)]->begin_get();
        inboxes[static_cast<std::size_t>(dst)]->end_get(m);
        ++delivered;
      });
    }
  }
  sys.engine().run();
  EXPECT_EQ(delivered, 12);
}

TEST(Topology, HubContentionSerializesConcurrentSendersToOneTarget) {
  // Three senders blast one receiver: HUB output-port contention must
  // serialize frames, not lose them.
  NectarSystem sys(4);
  core::Mailbox& sink = sys.runtime(3).create_mailbox("sink");
  constexpr int kEach = 10;
  int got = 0;
  sys.runtime(3).fork_system("rx", [&] {
    for (int i = 0; i < 3 * kEach; ++i) {
      core::Message m = sink.begin_get();
      sink.end_get(m);
      ++got;
    }
  });
  for (int src = 0; src < 3; ++src) {
    sys.runtime(src).fork_system("tx", [&sys, src, &sink] {
      core::Mailbox& s = sys.runtime(src).create_mailbox("s");
      for (int i = 0; i < kEach; ++i) {
        core::Message m = s.begin_put(2048);
        sys.stack(src).rmp.send(sink.address(), m);
      }
      sys.stack(src).rmp.wait_acked(3);
    });
  }
  sys.net().run_until(sim::sec(5));
  EXPECT_EQ(got, 3 * kEach);
  EXPECT_GT(sys.net().hub(0).output_queue_highwater(3), 0u);
}

}  // namespace
}  // namespace nectar::net
