#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace nectar::sim {
namespace {

TEST(Trace, MarksRecordSimulatedTime) {
  Engine e;
  TraceRecorder tr(e);
  e.schedule_at(100, [&] { tr.mark("a"); });
  e.schedule_at(250, [&] { tr.mark("b"); });
  e.run();
  EXPECT_EQ(tr.mark_time("a"), 100);
  EXPECT_EQ(tr.mark_time("b"), 250);
  EXPECT_EQ(tr.mark_time("missing"), -1);
}

TEST(Trace, SpansMeasureDurations) {
  Engine e;
  TraceRecorder tr(e);
  e.schedule_at(10, [&] { tr.begin("work"); });
  e.schedule_at(70, [&] { tr.end("work"); });
  e.run();
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_EQ(tr.spans()[0].duration(), 60);
  EXPECT_EQ(tr.span_total("work"), 60);
}

TEST(Trace, RepeatedSpansAccumulate) {
  Engine e;
  TraceRecorder tr(e);
  for (SimTime t = 0; t < 100; t += 20) {
    e.schedule_at(t, [&] { tr.begin("op"); });
    e.schedule_at(t + 5, [&] { tr.end("op"); });
  }
  e.run();
  EXPECT_EQ(tr.span_total("op"), 25);
  EXPECT_EQ(tr.spans().size(), 5u);
}

TEST(Trace, EndWithoutBeginThrows) {
  Engine e;
  TraceRecorder tr(e);
  EXPECT_THROW(tr.end("never-opened"), std::logic_error);
}

TEST(Trace, DisabledRecorderIgnoresEverything) {
  Engine e;
  TraceRecorder tr(e);
  tr.set_enabled(false);
  tr.mark("x");
  tr.begin("y");
  tr.end("y");  // no throw: disabled
  EXPECT_TRUE(tr.marks().empty());
  EXPECT_TRUE(tr.spans().empty());
}

TEST(Trace, ClearResets) {
  Engine e;
  TraceRecorder tr(e);
  tr.mark("m");
  tr.begin("s");
  tr.end("s");
  tr.clear();
  EXPECT_TRUE(tr.marks().empty());
  EXPECT_TRUE(tr.spans().empty());
}

}  // namespace
}  // namespace nectar::sim
