// scenario_runner: load a scenario description (INI format, see
// docs/SCENARIOS.md), run it on the simulated network, and print an
// SLO-style summary — per-workload tail latency, goodput, fairness, and
// fault-attributed loss. The run is a pure function of (config, seed): two
// invocations with the same inputs produce byte-identical --json reports.
//
//   scenario_runner <config.ini> [--seed N] [--duration D] [--shards N]
//                   [--json <path>] [--trace <path>] [--profile <path>]
//                   [--telemetry <path>] [--audit <path>]
//
// --seed, --duration and --shards override the [scenario]/[parallel]
// sections, so one config file serves as a family of experiments (--shards
// is how the CI determinism gates run one config at several shard counts).
// --trace and --profile match the bench binaries' flags: --trace writes a
// Chrome trace-event timeline of the run (single-shard only), --profile
// enables the cycle-attribution profiler and writes folded stacks
// (equivalent to setting [profile] folded in the config). --telemetry
// enables [telemetry] (continuous sampling + the conservation auditor) and
// writes the time-series artifact; --audit names the audit report file. An
// invariant violation exits 1 after the audit report is written.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "scenario/engine.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config.ini> [--seed N] [--duration D] [--shards N]\n"
               "       [--json <path>] [--trace <path>] [--profile <path>]\n"
               "       [--telemetry <path>] [--audit <path>]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nectar;

  std::string config_path;
  std::string json_path;
  std::string seed_override;
  std::string duration_override;
  std::string shards_override;
  std::string trace_path;
  std::string profile_path;
  std::string telemetry_path;
  std::string audit_path;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--telemetry" && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (a == "--audit" && i + 1 < argc) {
      audit_path = argv[++i];
    } else if (a == "--seed" && i + 1 < argc) {
      seed_override = argv[++i];
    } else if (a == "--duration" && i + 1 < argc) {
      duration_override = argv[++i];
    } else if (a == "--shards" && i + 1 < argc) {
      shards_override = argv[++i];
    } else if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a == "--profile" && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (!a.empty() && a[0] != '-' && config_path.empty()) {
      config_path = a;
    } else {
      usage(argv[0]);
    }
  }
  if (config_path.empty()) usage(argv[0]);

  try {
    scenario::Config cfg = scenario::Config::parse_file(config_path);
    scenario::ScenarioSpec spec = scenario::ScenarioSpec::from_config(cfg);
    if (!seed_override.empty()) {
      spec.seed = std::strtoull(seed_override.c_str(), nullptr, 10);
    }
    if (!duration_override.empty()) {
      spec.duration = scenario::parse_time(duration_override);
    }
    if (!shards_override.empty()) {
      spec.parallel.shards = std::atoi(shards_override.c_str());
      if (spec.parallel.shards < 1) {
        std::fprintf(stderr, "error: --shards wants an integer >= 1\n");
        return 2;
      }
    }
    if (!profile_path.empty()) spec.profile.folded = profile_path;
    if (!telemetry_path.empty()) {
      spec.telemetry.enabled = true;
      spec.telemetry.artifact = telemetry_path;
    }
    if (!audit_path.empty()) {
      spec.telemetry.enabled = true;
      spec.telemetry.audit = true;
      spec.telemetry.audit_artifact = audit_path;
    }
    if (!trace_path.empty() && spec.parallel.shards > 1) {
      std::fprintf(stderr, "error: --trace needs a single-shard run (the Chrome-trace "
                           "tracer records into one shared event list)\n");
      return 2;
    }

    std::printf("scenario %s: %d nodes (%s), %zu workload(s), %zu fault(s), seed %llu\n",
                spec.name.c_str(), spec.topology.nodes,
                spec.topology.kind == scenario::TopologyKind::Star        ? "star"
                : spec.topology.kind == scenario::TopologyKind::DualHub   ? "dual_hub"
                                                                          : "fat_tree",
                spec.workloads.size(), spec.faults.size(),
                static_cast<unsigned long long>(spec.seed));

    scenario::Scenario sc(std::move(spec));
    if (!trace_path.empty()) sc.net().tracer().set_enabled(true);
    sc.run();

    std::printf("ran %.1f ms of simulated time\n\n", sim::to_msec(sc.spec().duration));
    std::printf("%-12s %10s %10s %8s %8s %10s %9s %9s %9s\n", "workload", "delivered", "shed",
                "errors", "fair", "Mbit/s", "p50 us", "p99 us", "p999 us");
    for (const auto& w : sc.workloads()) {
      const auto& h = w->latency();
      std::printf("%-12s %10llu %10llu %8llu %8.3f %10.2f %9.1f %9.1f %9.1f\n",
                  w->spec().name.c_str(), static_cast<unsigned long long>(w->delivered()),
                  static_cast<unsigned long long>(w->shed()),
                  static_cast<unsigned long long>(w->errors()), w->fairness(),
                  w->goodput_mbps(sc.spec().duration), h.p50() / sim::kMicrosecond,
                  h.p99() / sim::kMicrosecond, h.p999() / sim::kMicrosecond);
    }
    std::printf("\ndrops: %llu total, %llu attributed to %zu injected fault(s)\n",
                static_cast<unsigned long long>(sc.faults().network_drops()),
                static_cast<unsigned long long>(sc.faults().total_attributed_drops()),
                sc.faults().faults_injected());
    for (std::size_t i = 0; i < sc.faults().records().size(); ++i) {
      const auto& r = sc.faults().records()[i];
      std::printf("  fault%zu %s at %.1f ms: %llu drops\n", i, r.spec.describe().c_str(),
                  sim::to_msec(r.applied_at), static_cast<unsigned long long>(r.attributed_drops));
    }

    for (std::size_t i = 0; i < sc.spec().captures.size(); ++i) {
      const auto& c = sc.spec().captures[i];
      std::printf("capture %s (%s): %llu packet(s) -> %s\n", c.element.c_str(), c.format.c_str(),
                  static_cast<unsigned long long>(sc.captures()[i]->packets_written()),
                  c.file.c_str());
    }
    if (!sc.spec().profile.folded.empty()) {
      std::printf("profile: folded stacks -> %s\n", sc.spec().profile.folded.c_str());
    }
    if (!sc.spec().profile.timeline.empty()) {
      std::printf("profile: protocol timelines -> %s\n", sc.spec().profile.timeline.c_str());
    }
    if (!trace_path.empty()) {
      if (!sc.net().tracer().write_chrome(trace_path)) {
        std::fprintf(stderr, "error: cannot write trace to %s\n", trace_path.c_str());
        return 1;
      }
      std::printf("trace: %zu event(s) -> %s\n", sc.net().tracer().events().size(),
                  trace_path.c_str());
    }
    if (sc.sampler() != nullptr) {
      std::printf("telemetry: %zu sample(s), %zu series, %zu mark(s)%s%s\n",
                  sc.sampler()->samples(), sc.sampler()->series_count(),
                  sc.sampler()->marks().size(),
                  sc.spec().telemetry.artifact.empty() ? "" : " -> ",
                  sc.spec().telemetry.artifact.c_str());
    }
    if (sc.auditor() != nullptr) {
      std::printf("audit: %zu invariant(s), %llu check(s), %zu violation(s)\n",
                  sc.auditor()->invariants(),
                  static_cast<unsigned long long>(sc.auditor()->checks_run()),
                  sc.auditor()->violations().size());
    }
    if (sc.spec().tracing.enabled && !sc.spec().tracing.artifact.empty()) {
      std::printf("tracing: %llu trace(s) -> %s\n",
                  static_cast<unsigned long long>(sc.causal_tracer()->finished_count()),
                  sc.spec().tracing.artifact.c_str());
    }

    if (!json_path.empty()) {
      obs::RunReport rep = sc.report();
      if (!rep.write(json_path)) {
        std::fprintf(stderr, "error: cannot write report to %s\n", json_path.c_str());
        return 1;
      }
      std::printf("\nwrote %s\n", json_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
