#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nectar::obs {
class Tracer;
}

namespace nectar::sim {

class Engine;

/// Lightweight span/event recorder used to reproduce the paper's Figure 6
/// latency breakdown: components mark named points and spans on the simulated
/// clock; the benchmark harness turns them into a per-stage budget.
///
/// Edge-case contract (explicit, covered by tests/sim/trace_test.cpp):
///  - end() on a label with no open span is an error and throws
///    std::logic_error — a silent no-op would corrupt Figure-6 attributions.
///  - Spans with the same label MAY nest: begin/end pair LIFO (an end()
///    closes the most recently begun open span with that label), so
///    re-entrant stages account their full duration at every depth.
///
/// The recorder can additionally forward everything it sees into an
/// obs::Tracer (the structured per-Engine event sink), so legacy mark()
/// call sites show up as instants on a Chrome/Perfetto timeline without
/// being re-instrumented.
class TraceRecorder {
 public:
  explicit TraceRecorder(Engine& engine) : engine_(engine) {}

  struct Mark {
    std::string label;
    SimTime time;
  };
  struct Span {
    std::string label;
    SimTime start;
    SimTime end;
    SimTime duration() const { return end - start; }
  };

  /// Record an instantaneous named event.
  void mark(std::string label);

  /// Open a named span. Same-label spans nest (LIFO).
  void begin(std::string label);
  /// Close the most recently begun open span with this label. Throws
  /// std::logic_error if no span with this label is open.
  void end(const std::string& label);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Forward marks/spans into `sink` on `track` (see obs::Tracer::track).
  /// Pass nullptr to detach. The recorder keeps recording locally either way.
  void set_sink(obs::Tracer* sink, int track) {
    sink_ = sink;
    sink_track_ = track;
  }

  const std::vector<Mark>& marks() const { return marks_; }
  const std::vector<Span>& spans() const { return spans_; }
  std::size_t open_spans() const { return open_.size(); }

  /// Time of the first mark with this label, or -1 if absent.
  SimTime mark_time(const std::string& label) const;

  /// Total duration of all spans with this label (0 if absent).
  SimTime span_total(const std::string& label) const;

  void clear();

 private:
  Engine& engine_;
  bool enabled_ = true;
  obs::Tracer* sink_ = nullptr;
  int sink_track_ = -1;
  std::vector<Mark> marks_;
  std::vector<Span> spans_;
  std::vector<Span> open_;  // spans begun but not yet ended
};

}  // namespace nectar::sim
