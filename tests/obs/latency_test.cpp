#include "obs/latency.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace nectar::obs {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p999(), 0.0);
}

TEST(LatencyHistogramTest, SingleObservation) {
  LatencyHistogram h;
  h.observe(sim::usec(100));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), sim::usec(100));
  EXPECT_EQ(h.max(), sim::usec(100));
  EXPECT_DOUBLE_EQ(h.mean(), 100'000.0);
  // Every quantile of a single sample is that sample (clamped to [min,max]).
  EXPECT_DOUBLE_EQ(h.p50(), 100'000.0);
  EXPECT_DOUBLE_EQ(h.p999(), 100'000.0);
}

TEST(LatencyHistogramTest, QuantilesOfUniformSpread) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(sim::usec(i));
  EXPECT_EQ(h.count(), 1000u);
  // Log-bucketed: ~9% relative resolution per sub-bucket.
  EXPECT_NEAR(h.p50(), 500'000.0, 0.10 * 500'000.0);
  EXPECT_NEAR(h.p90(), 900'000.0, 0.10 * 900'000.0);
  EXPECT_NEAR(h.p99(), 990'000.0, 0.10 * 990'000.0);
  // Quantiles never escape the observed range.
  EXPECT_GE(h.p50(), static_cast<double>(h.min()));
  EXPECT_LE(h.p999(), static_cast<double>(h.max()));
}

TEST(LatencyHistogramTest, QuantilesAreMonotonic) {
  LatencyHistogram h;
  sim::Random rng(99);
  for (int i = 0; i < 5000; ++i) {
    h.observe(static_cast<sim::SimTime>(rng.next_below(sim::msec(50))) + 300);
  }
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), static_cast<double>(h.max()));
}

TEST(LatencyHistogramTest, UnderflowAndOverflowAreClamped) {
  LatencyHistogram h;
  h.observe(0);
  h.observe(3);                // below the 256 ns first octave
  h.observe(sim::sec(1000));   // beyond the last octave (~137 s)
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), sim::sec(1000));
  EXPECT_GE(h.p999(), 0.0);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, both;
  for (int i = 1; i <= 100; ++i) {
    a.observe(sim::usec(i));
    both.observe(sim::usec(i));
  }
  for (int i = 1000; i <= 2000; i += 10) {
    b.observe(sim::usec(i));
    both.observe(sim::usec(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.p50(), both.p50());
  EXPECT_DOUBLE_EQ(a.p999(), both.p999());
}

TEST(LatencyHistogramTest, MergeEmptyIsIdentity) {
  LatencyHistogram a, empty;
  for (int i = 1; i <= 50; ++i) a.observe(sim::usec(i));
  std::string before = a.to_json().dump(0);
  a.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.to_json().dump(0), before);
  EXPECT_EQ(a.count(), 50u);

  LatencyHistogram b;
  b.merge(a);  // merging *into* an empty histogram copies it
  EXPECT_EQ(b.to_json().dump(0), before);
  EXPECT_EQ(b.min(), a.min());
  EXPECT_EQ(b.max(), a.max());
}

TEST(LatencyHistogramTest, MergeEmptyIntoEmpty) {
  LatencyHistogram a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 0);
  EXPECT_DOUBLE_EQ(a.p999(), 0.0);
}

TEST(LatencyHistogramTest, MergeIsAssociativeOverManyParts) {
  // The per-flow -> global aggregation path in scenario reports: merging N
  // flow histograms in any grouping equals observing the union stream.
  LatencyHistogram parts[4], all;
  sim::Random rng(42);
  for (int i = 0; i < 4000; ++i) {
    sim::SimTime v = static_cast<sim::SimTime>(rng.next_below(sim::msec(10))) + 1;
    parts[i % 4].observe(v);
    all.observe(v);
  }
  LatencyHistogram left;  // ((p0+p1)+p2)+p3
  for (auto& p : parts) left.merge(p);
  LatencyHistogram right;  // p0+(p1+(p2+p3)) built pairwise
  LatencyHistogram tail;
  tail.merge(parts[2]);
  tail.merge(parts[3]);
  LatencyHistogram mid;
  mid.merge(parts[1]);
  mid.merge(tail);
  right.merge(parts[0]);
  right.merge(mid);
  EXPECT_EQ(left.to_json().dump(0), all.to_json().dump(0));
  EXPECT_EQ(right.to_json().dump(0), all.to_json().dump(0));
}

TEST(LatencyHistogramTest, BucketBoundsGrowMonotonically) {
  for (int i = 1; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_LT(LatencyHistogram::bucket_bound(i - 1), LatencyHistogram::bucket_bound(i))
        << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, JsonCarriesPercentiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.observe(sim::usec(500));
  json::Value v = h.to_json();
  ASSERT_TRUE(v.has("count"));
  EXPECT_EQ(v.find("count")->as_int(), 100);
  EXPECT_NEAR(v.find("p50_us")->as_double(), 500.0, 50.0);
  EXPECT_NEAR(v.find("p999_us")->as_double(), 500.0, 50.0);
}

TEST(LatencyHistogramTest, MergeEmptyIntoPopulatedIsIdentity) {
  LatencyHistogram h;
  for (int i = 1; i <= 200; ++i) h.observe(sim::usec(i));
  std::string before = h.to_json().dump(0);
  LatencyHistogram empty;
  h.merge(empty);
  EXPECT_EQ(h.to_json().dump(0), before);
  // And the other direction: empty absorbs the populated one exactly,
  // including min/max (an empty histogram's zero min must not survive).
  LatencyHistogram sink;
  sink.merge(h);
  EXPECT_EQ(sink.to_json().dump(0), before);
  EXPECT_EQ(sink.min(), sim::usec(1));
  EXPECT_EQ(sink.max(), sim::usec(200));
}

TEST(LatencyHistogramTest, MergeEmptyIntoEmptyStaysEmpty) {
  LatencyHistogram a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 0);
  EXPECT_DOUBLE_EQ(a.p99(), 0.0);
}

TEST(LatencyHistogramTest, SelfMergeDoublesCountsKeepsQuantiles) {
  LatencyHistogram h;
  sim::Random rng(41);
  for (int i = 0; i < 3000; ++i) {
    h.observe(static_cast<sim::SimTime>(rng.next_below(sim::msec(10))) + 500);
  }
  LatencyHistogram copy = h;
  double p50 = h.p50(), p99 = h.p99();
  h.merge(copy);
  EXPECT_EQ(h.count(), 6000u);
  EXPECT_EQ(h.sum(), 2 * copy.sum());
  EXPECT_EQ(h.min(), copy.min());
  EXPECT_EQ(h.max(), copy.max());
  // Doubling every bucket's weight leaves every quantile exactly in place.
  EXPECT_DOUBLE_EQ(h.p50(), p50);
  EXPECT_DOUBLE_EQ(h.p99(), p99);
}

TEST(LatencyHistogramTest, MergeSingleBucketHistograms) {
  LatencyHistogram lo, hi;
  for (int i = 0; i < 100; ++i) lo.observe(sim::usec(10));
  for (int i = 0; i < 100; ++i) hi.observe(sim::msec(10));
  lo.merge(hi);
  EXPECT_EQ(lo.count(), 200u);
  EXPECT_EQ(lo.min(), sim::usec(10));
  EXPECT_EQ(lo.max(), sim::msec(10));
  // Half the mass at each end: p50 splits between the two spikes, p90 must
  // land in the slow spike's bucket.
  EXPECT_NEAR(lo.p90(), static_cast<double>(sim::msec(10)), 0.10 * sim::msec(10));
}

TEST(LatencyHistogramTest, QuantilesMonotonicAfterMerge) {
  LatencyHistogram a, b;
  sim::Random ra(5), rb(6);
  for (int i = 0; i < 2000; ++i) {
    a.observe(static_cast<sim::SimTime>(ra.next_below(sim::usec(300))) + 256);
    b.observe(static_cast<sim::SimTime>(rb.next_below(sim::msec(30))) + 256);
  }
  a.merge(b);
  EXPECT_LE(a.p50(), a.p90());
  EXPECT_LE(a.p90(), a.p99());
  EXPECT_LE(a.p99(), a.p999());
  EXPECT_GE(a.p50(), static_cast<double>(a.min()));
  EXPECT_LE(a.p999(), static_cast<double>(a.max()));
}

TEST(LatencyHistogramTest, DeterministicAcrossRuns) {
  auto run = [] {
    LatencyHistogram h;
    sim::Random rng(7);
    for (int i = 0; i < 2000; ++i) h.observe(static_cast<sim::SimTime>(rng.next_below(1 << 20)));
    return h.to_json().dump(0);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace nectar::obs
