#pragma once

#include <array>
#include <functional>
#include <string>

#include "hw/dma.hpp"
#include "hw/fifo.hpp"
#include "hw/link.hpp"
#include "hw/memory.hpp"
#include "hw/vme.hpp"
#include "sim/engine.hpp"

namespace nectar::hw {

/// Interrupt lines into the CAB CPU.
enum class CabIrq : int {
  PacketArrival = 0,  ///< input FIFO went non-empty (start-of-packet)
  DmaRecvDone,        ///< receive DMA channel completed
  DmaSendDone,        ///< send DMA channel completed
  VmeDone,            ///< VME DMA channel completed
  HostDoorbell,       ///< host posted to the CAB signal queue
  Count
};
constexpr int kNumCabIrqs = static_cast<int>(CabIrq::Count);

/// The CAB (Communication Accelerator Board), paper §2.2: the hardware
/// assembly of CPU-visible devices — memory, protection unit, fiber in/out,
/// DMA controller, VME interface, interrupt lines. The CPU itself (charge
/// model, scheduling) lives in `core/`, which hooks the interrupt lines.
class CabBoard {
 public:
  CabBoard(sim::Engine& engine, std::string name, int node_id, VmeBus* vme = nullptr);

  CabBoard(const CabBoard&) = delete;
  CabBoard& operator=(const CabBoard&) = delete;

  sim::Engine& engine() { return engine_; }
  const std::string& name() const { return name_; }
  int node_id() const { return node_id_; }

  CabMemory& memory() { return memory_; }
  ProtectionUnit& protection() { return protection_; }
  FiberInFifo& in_fifo() { return in_fifo_; }
  FiberLink& out_link() { return out_link_; }
  DmaController& dma() { return dma_; }
  VmeBus* vme() { return vme_; }

  /// Install the CPU's handler for an interrupt line. Raising an unhandled
  /// line is an error (the runtime installs all handlers at boot).
  void set_irq_handler(CabIrq irq, std::function<void()> handler);
  void raise_irq(CabIrq irq);

  /// Host side rings this after posting to the CAB signal queue (§3.2).
  void ring_doorbell() { raise_irq(CabIrq::HostDoorbell); }

 private:
  sim::Engine& engine_;
  std::string name_;
  int node_id_;
  CabMemory memory_;
  ProtectionUnit protection_;
  FiberInFifo in_fifo_;
  FiberLink out_link_;
  VmeBus* vme_;
  DmaController dma_;
  std::array<std::function<void()>, kNumCabIrqs> irq_handlers_{};
};

}  // namespace nectar::hw
