#include "nectarine/netshm.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"

namespace nectar::nectarine {
namespace {

struct Cluster {
  net::NectarSystem sys;
  std::vector<std::unique_ptr<NetSharedMemory>> shm;

  explicit Cluster(int nodes) : sys(nodes) {
    std::map<int, NetSharedMemory::PeerAddr> peers;
    for (int i = 0; i < nodes; ++i) {
      shm.push_back(std::make_unique<NetSharedMemory>(sys.runtime(i), sys.stack(i).reqresp,
                                                      sys.stack(i).rmp));
      peers[i] = shm.back()->addresses();
    }
    auto home_of = [nodes](std::uint32_t page) { return static_cast<int>(page) % nodes; };
    for (auto& s : shm) s->configure(home_of, peers);
  }
};

std::vector<std::uint8_t> page_of(std::uint8_t fill) {
  return std::vector<std::uint8_t>(NetSharedMemory::kPageSize, fill);
}

TEST(NetShm, RemoteReadFetchesAndCaches) {
  Cluster c(2);
  bool done = false;
  c.sys.runtime(1).fork_app("reader", [&] {
    std::vector<std::uint8_t> buf(NetSharedMemory::kPageSize);
    c.shm[1]->read(0, buf);  // page 0 homes on node 0 -> remote fetch
    EXPECT_EQ(buf[0], 0);    // fresh pages read as zero
    c.shm[1]->read(0, buf);  // second read is a local cache hit
    done = true;
  });
  c.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(done);
  EXPECT_EQ(c.shm[1]->cache_misses(), 1u);
  EXPECT_EQ(c.shm[1]->cache_hits(), 1u);
  EXPECT_TRUE(c.shm[1]->cached(0));
}

TEST(NetShm, WriteInvalidatesRemoteCaches) {
  Cluster c(3);
  bool reader_primed = false, writer_done = false, verified = false;
  // Node 1 caches page 0 (home: node 0).
  c.sys.runtime(1).fork_app("reader", [&] {
    std::vector<std::uint8_t> buf(NetSharedMemory::kPageSize);
    c.shm[1]->read(0, buf);
    reader_primed = true;
    // Wait until the writer is done, then read again: must see new data.
    while (!writer_done) c.sys.runtime(1).cpu().sleep_for(sim::usec(200));
    c.shm[1]->read(0, buf);
    EXPECT_EQ(buf[7], 0xEE);  // the written value, not the stale zero
    verified = true;
  });
  // Node 2 writes page 0 once node 1 has cached it.
  c.sys.runtime(2).fork_app("writer", [&] {
    while (!reader_primed) c.sys.runtime(2).cpu().sleep_for(sim::usec(200));
    auto data = page_of(0xEE);
    c.shm[2]->write(0, data);
    writer_done = true;
  });
  c.sys.net().run_until(sim::sec(5));
  EXPECT_TRUE(verified);
  EXPECT_EQ(c.shm[0]->invalidations_sent(), 1u);   // home invalidated node 1
  EXPECT_EQ(c.shm[1]->invalidations_applied(), 1u);
  // (the verify read legitimately re-cached the page afterwards; the fresh
  // value assertion above is what proves the stale copy was destroyed)
  EXPECT_EQ(c.shm[1]->cache_misses(), 2u);  // initial fetch + post-invalidation refetch
}

TEST(NetShm, WriteIsNotVisibleBeforeInvalidationCompletes) {
  // Strong coherence: once write() returns anywhere, every read anywhere
  // returns the new value.
  Cluster c(2);
  bool ok = false;
  c.sys.runtime(1).fork_app("t", [&] {
    std::vector<std::uint8_t> buf(NetSharedMemory::kPageSize);
    c.shm[1]->read(2, buf);  // page 2 homes on node 0; cache it
    auto v1 = page_of(0x11);
    c.shm[1]->write(2, v1);  // write through home
    c.shm[1]->read(2, buf);  // must observe our own write
    EXPECT_EQ(buf[100], 0x11);
    ok = true;
  });
  c.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(ok);
}

TEST(NetShm, HomeNodeReadsAndWritesLocally) {
  Cluster c(2);
  bool ok = false;
  c.sys.runtime(0).fork_app("t", [&] {
    auto data = page_of(0x42);
    c.shm[0]->write(0, data);  // page 0 homes here: no network
    std::vector<std::uint8_t> buf(NetSharedMemory::kPageSize);
    c.shm[0]->read(0, buf);
    EXPECT_EQ(buf[500], 0x42);
    ok = true;
  });
  c.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(ok);
  EXPECT_EQ(c.shm[0]->remote_writes(), 0u);
  EXPECT_EQ(c.shm[0]->cache_misses(), 0u);
}

TEST(NetShm, ManyPagesDistributeAcrossHomes) {
  Cluster c(4);
  bool ok = false;
  c.sys.runtime(0).fork_app("t", [&] {
    std::vector<std::uint8_t> buf(NetSharedMemory::kPageSize);
    for (std::uint32_t page = 0; page < 8; ++page) {
      auto data = page_of(static_cast<std::uint8_t>(page + 1));
      c.shm[0]->write(page, data);
    }
    for (std::uint32_t page = 0; page < 8; ++page) {
      c.shm[0]->read(page, buf);
      EXPECT_EQ(buf[0], page + 1) << "page " << page;
    }
    ok = true;
  });
  c.sys.net().run_until(sim::sec(10));
  EXPECT_TRUE(ok);
  EXPECT_EQ(c.shm[0]->remote_writes(), 6u);  // pages 0 and 4 are local
}

TEST(NetShm, SequentialConsistencyAcrossTwoWriters) {
  // Writers on two nodes alternate increments through shared page 1; a
  // strict turn-taking protocol over the page contents must never observe a
  // lost update if coherence holds.
  Cluster c(3);
  constexpr int kRounds = 6;
  auto worker = [&](int node, std::uint8_t parity) {
    c.sys.runtime(node).fork_app("w", [&c, node, parity] {
      std::vector<std::uint8_t> buf(NetSharedMemory::kPageSize);
      for (int done = 0; done < kRounds;) {
        c.shm[static_cast<std::size_t>(node)]->read(1, buf);
        if (buf[0] % 2 == parity) {
          buf[0] = static_cast<std::uint8_t>(buf[0] + 1);
          c.shm[static_cast<std::size_t>(node)]->write(1, buf);
          ++done;
        } else {
          c.sys.runtime(node).cpu().sleep_for(sim::usec(300));
        }
      }
    });
  };
  worker(1, 0);  // increments when counter is even
  worker(2, 1);  // increments when counter is odd
  c.sys.net().run_until(sim::sec(30));
  bool checked = false;
  c.sys.runtime(0).fork_app("audit", [&] {
    std::vector<std::uint8_t> buf(NetSharedMemory::kPageSize);
    c.shm[0]->read(1, buf);
    EXPECT_EQ(buf[0], 2 * kRounds);  // every increment observed exactly once
    checked = true;
  });
  c.sys.net().run_until(sim::sec(31));
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace nectar::nectarine
