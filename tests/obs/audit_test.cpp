#include "obs/audit.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "hw/pool.hpp"

namespace nectar::obs {
namespace {

TEST(Auditor, HoldingInvariantsStayQuiet) {
  Auditor a;
  int calls = 0;
  a.add("always.holds", "x", [&calls] {
    ++calls;
    return std::string();
  });
  a.check(0);
  a.check(sim::msec(1));
  a.finalize(sim::msec(2));
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(a.ticks(), 3u);
  EXPECT_EQ(a.checks_run(), 3u);
  EXPECT_TRUE(a.violations().empty());
  a.throw_if_failed();  // must not throw
}

TEST(Auditor, RecordsFirstViolatingIntervalAndCountsRecurrences) {
  Auditor a;
  int tick = 0;
  a.add("frames.conserved", "node3.link", [&tick] {
    return tick >= 2 ? "sent=10 delivered=8" : std::string();
  });
  for (tick = 0; tick < 5; ++tick) a.check(sim::msec(tick));
  EXPECT_FALSE(a.ok());
  ASSERT_EQ(a.violations().size(), 1u);
  const Auditor::Violation& v = a.violations().front();
  EXPECT_EQ(v.t, sim::msec(2));  // first violating tick, not the last
  EXPECT_EQ(v.invariant, "frames.conserved");
  EXPECT_EQ(v.component, "node3.link");
  EXPECT_EQ(v.detail, "sent=10 delivered=8");
  EXPECT_EQ(v.occurrences, 3u);  // ticks 2, 3, 4
}

TEST(Auditor, FinalChecksRunOnlyAtFinalize) {
  Auditor a;
  int final_calls = 0;
  a.add_final("lease.balance", "pool", [&final_calls] {
    ++final_calls;
    return "outstanding=1 baseline=0";
  });
  a.check(0);
  a.check(sim::msec(1));
  EXPECT_EQ(final_calls, 0);
  EXPECT_TRUE(a.ok());
  a.finalize(sim::msec(2));
  EXPECT_EQ(final_calls, 1);
  ASSERT_EQ(a.violations().size(), 1u);
  EXPECT_EQ(a.violations().front().t, sim::msec(2));
}

TEST(Auditor, ThrowIfFailedNamesTheViolation) {
  Auditor a;
  a.add("frames.conserved", "hub0", [] { return "in=5 out=4"; });
  a.check(sim::msec(7));
  try {
    a.throw_if_failed();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("frames.conserved"), std::string::npos) << what;
    EXPECT_NE(what.find("hub0"), std::string::npos) << what;
    EXPECT_NE(what.find("in=5 out=4"), std::string::npos) << what;
  }
}

TEST(Auditor, ReportJsonIsStructured) {
  Auditor a;
  a.add("inv.a", "compA", [] { return "bad"; });
  a.add("inv.b", "compB", [] { return std::string(); });
  a.check(sim::msec(3));
  a.finalize(sim::msec(4));
  json::Value doc = a.report_json();
  EXPECT_EQ(doc.find("schema")->as_string(), "nectar-audit");
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("invariants")->as_int(), 2);
  const json::Value& violations = *doc.find("violations");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.at(0).find("invariant")->as_string(), "inv.a");
  EXPECT_EQ(violations.at(0).find("component")->as_string(), "compA");
  EXPECT_EQ(violations.at(0).find("t_ns")->as_int(), sim::msec(3));
}

TEST(Auditor, BuiltinHistogramCheckPassesOnConsistentRegistry) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram(0, "dl", "bytes", {100, 200});
  h.observe(50);
  h.observe(150);
  h.observe(500);
  Auditor a(&reg);
  a.check(0);
  EXPECT_TRUE(a.ok());
}

// The acceptance demonstration for the lease-balance invariant: a quiesced
// system passes against its baseline; a deliberately leaked PooledBytes (a
// lease acquired and never released) makes outstanding() stay permanently
// above it and the final check fails, naming the pool.
TEST(Auditor, CatchesDeliberatelyLeakedBufferPoolLease) {
  hw::BufferPool& pool = hw::BufferPool::payloads();

  auto install = [&pool](Auditor& a, std::int64_t baseline) {
    a.add_final("pool.lease_balance", "hw.framepool", [&pool, baseline] {
      // Quiesced end-of-run: every lease taken since the baseline must have
      // been handed back. (<= because independent owners may release
      // buffers adopted from outside the pool.)
      if (pool.outstanding() <= baseline) return std::string();
      return "outstanding=" + std::to_string(pool.outstanding()) +
             " baseline=" + std::to_string(baseline);
    });
  };

  {
    // Balanced traffic: acquire and release in pairs, then quiesce.
    std::int64_t baseline = pool.outstanding();
    Auditor a;
    install(a, baseline);
    for (int i = 0; i < 16; ++i) hw::PooledBytes scratch(128);
    a.finalize(sim::msec(1));
    EXPECT_TRUE(a.ok());
  }

  {
    std::int64_t baseline = pool.outstanding();
    Auditor a;
    install(a, baseline);
    // The leak: acquire a lease and deliberately never run its destructor.
    auto* leaked = new hw::PooledBytes(256);
    a.finalize(sim::msec(2));
    EXPECT_FALSE(a.ok());
    ASSERT_EQ(a.violations().size(), 1u);
    EXPECT_EQ(a.violations().front().invariant, "pool.lease_balance");
    EXPECT_EQ(a.violations().front().component, "hw.framepool");
    EXPECT_THROW(a.throw_if_failed(), std::runtime_error);
    delete leaked;  // clean up so later tests see a balanced pool
  }
}

}  // namespace
}  // namespace nectar::obs
