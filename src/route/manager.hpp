#pragma once

// RouteManager: the control-plane head that turns path health into routing
// decisions. It owns the PathDb and one HealthMonitor per CAB, installs the
// ECMP-preferred route of every pair into the data plane (proto::Datalink
// route tables) at start(), and on a Dead report fails the pair over to the
// first surviving path — in-flight TCP/RMP traffic simply starts taking the
// new source route on its next (re)transmission, no connection state is
// touched. On recovery it reverts to the preferred path (configurable).
//
// Everything runs on the simulated CABs: detections arrive on the reporting
// node's prober thread at simulated time, so the reroute latency histogram
// (first missed probe send -> route switched) measures the real
// detection + switch window the configuration implies:
//   worst case ~ probe_interval * (dead_after - 1) + probe_timeout + epsilon.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "nproto/datagram.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "route/health.hpp"
#include "route/pathdb.hpp"

namespace nectar::route {

class RouteManager : public HealthListener {
 public:
  RouteManager(net::Network& net, RoutingConfig cfg);
  ~RouteManager() override;

  RouteManager(const RouteManager&) = delete;
  RouteManager& operator=(const RouteManager&) = delete;

  const RoutingConfig& config() const { return cfg_; }

  /// Register node `node`'s datagram protocol (the probe transport). Call
  /// for every node before start().
  void attach(int node, nproto::DatagramProtocol& dg);

  /// Build the PathDb, replace every datalink's BFS route with the pair's
  /// ECMP-preferred path, fork the health monitors, and register the
  /// control plane's metrics probes. Call once, before the clock runs.
  void start();

  const PathDb& paths() const { return *paths_; }
  /// The path index currently installed for src -> dst.
  int installed_path(int src, int dst) const;
  PathState path_state(int node, int dst, int path) const;

  // --- stats ---------------------------------------------------------------

  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t reverts() const { return reverts_; }
  std::uint64_t no_path_events() const { return no_path_; }

  /// One routing decision, stamped with the deciding node's simulated clock.
  /// kind is "failover" (switched to a surviving path), "revert" (restored
  /// the preferred path after recovery) or "no_path" (every path dead; the
  /// stale route was kept). Telemetry turns these into time-series marks.
  struct RouteEvent {
    sim::SimTime t = 0;
    std::string kind;
    int node = -1;
    int dst = -1;
    int path = -1;
  };
  /// Snapshot of the decision log (copied under the log lock — decisions
  /// land on shard prober threads, so readers must not alias the vector).
  std::vector<RouteEvent> events() const;
  std::uint64_t probes_sent() const;
  std::uint64_t probe_timeouts() const;
  std::uint64_t probe_replies() const;
  const obs::LatencyHistogram& reroute_latency() const { return reroute_; }

  /// Append "route.*" result rows (churn counters + reroute latency
  /// percentiles) to a scenario/bench report.
  void report_into(obs::RunReport& rep) const;

  // --- HealthListener ------------------------------------------------------

  void on_path_dead(int node, int dst, int path, sim::SimTime first_miss_sent_at) override;
  void on_path_recovered(int node, int dst, int path) override;

 private:
  void install(int src, int dst, int path);
  /// First alive path for src -> dst, preferred-first; -1 if all dead.
  int pick_alive(int src, int dst) const;
  void record_event(const char* kind, int node, int dst, int path);

  net::Network& net_;
  RoutingConfig cfg_;
  std::vector<nproto::DatagramProtocol*> protos_;
  std::unique_ptr<PathDb> paths_;
  std::vector<std::unique_ptr<HealthMonitor>> monitors_;
  std::vector<core::MailboxAddr> monitor_addrs_;
  std::map<std::pair<int, int>, int> installed_;

  std::uint64_t failovers_ = 0;
  std::uint64_t reverts_ = 0;
  std::uint64_t no_path_ = 0;
  std::uint64_t routes_installed_ = 0;
  obs::LatencyHistogram reroute_;
  mutable std::mutex events_mu_;
  std::vector<RouteEvent> events_;

  obs::Registration metrics_reg_;
};

}  // namespace nectar::route
