#pragma once

// Minimal JSON document model for the observability layer: deterministic
// serialization (objects keep insertion order, fixed number formatting) plus
// a small strict parser so tests can round-trip exporter output without an
// external dependency. Not a general-purpose JSON library: no comments, no
// trailing commas, numbers limited to int64/double.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nectar::obs::json {

/// Escape a string for embedding inside a JSON string literal (quotes not
/// included).
std::string escape(std::string_view s);

/// Deterministic number formatting shared by every JSON emitter in the repo:
/// shortest form via %.17g would leak libc differences into committed files,
/// so we fix the precision instead.
std::string format_double(double v);

class Value {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(int i) : type_(Type::Int), int_(i) {}
  Value(std::int64_t i) : type_(Type::Int), int_(i) {}
  Value(std::uint64_t i) : type_(Type::Int), int_(static_cast<std::int64_t>(i)) {}
  Value(double d) : type_(Type::Double), dbl_(d) {}
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Value(const char* s) : type_(Type::String), str_(s) {}

  static Value array() {
    Value v;
    v.type_ = Type::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_number() const { return type_ == Type::Int || type_ == Type::Double; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const { return type_ == Type::Double ? static_cast<std::int64_t>(dbl_) : int_; }
  double as_double() const { return type_ == Type::Int ? static_cast<double>(int_) : dbl_; }
  const std::string& as_string() const { return str_; }

  // --- array ------------------------------------------------------------------
  void push(Value v) { items_.push_back(std::move(v)); }
  std::size_t size() const { return is_object() ? members_.size() : items_.size(); }
  const Value& at(std::size_t i) const { return items_.at(i); }
  const std::vector<Value>& items() const { return items_; }

  // --- object (insertion-ordered) ----------------------------------------------
  Value& set(std::string key, Value v) {
    members_.emplace_back(std::move(key), std::move(v));
    return members_.back().second;
  }
  /// nullptr if the key is absent.
  const Value* find(std::string_view key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool has(std::string_view key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, Value>>& members() const { return members_; }

  /// Serialize. indent < 0: compact single line; otherwise pretty-printed
  /// with that many spaces per level. Output is byte-deterministic for a
  /// given document.
  std::string dump(int indent = -1) const;

  /// Strict parse; throws std::runtime_error with offset info on malformed
  /// input (including trailing garbage).
  static Value parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double dbl_ = 0;
  std::string str_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

}  // namespace nectar::obs::json
