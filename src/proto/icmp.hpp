#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "proto/ip.hpp"

namespace nectar::proto {

/// ICMP (paper §4.1). Implemented as a *mailbox upcall* on its IP input
/// mailbox — the paper's example of trading a server thread's concurrency
/// for the absence of context switches: echo requests are answered entirely
/// at interrupt level, in place, with zero copies.
class Icmp {
 public:
  explicit Icmp(Ip& ip);

  Icmp(const Icmp&) = delete;
  Icmp& operator=(const Icmp&) = delete;

  /// Send an echo request with `payload_len` pattern bytes; `on_reply(seq,
  /// rtt)` fires (interrupt context) when the matching reply arrives.
  using EchoCallback = std::function<void(std::uint16_t seq, sim::SimTime rtt)>;
  void ping(IpAddr dst, std::uint16_t id, std::uint16_t seq, std::size_t payload_len,
            EchoCallback on_reply);

  /// Send a destination-unreachable (type 3) for the rejected datagram
  /// `offender` (IP header attached; consumed). Quotes the offending IP
  /// header plus the first 8 payload bytes, per RFC 792. Interrupt-safe —
  /// IP and UDP call this when no protocol/port is registered.
  void send_unreachable(std::uint8_t code, core::Message offender);

  /// Observe received destination-unreachables (interrupt context):
  /// `handler(code, offending_header)`.
  using UnreachableHandler = std::function<void(std::uint8_t code, const IpHeader& offending)>;
  void set_unreachable_handler(UnreachableHandler h) { unreachable_handler_ = std::move(h); }

  std::uint64_t echo_requests_received() const { return echo_req_rx_; }
  std::uint64_t echo_replies_sent() const { return echo_rep_tx_; }
  std::uint64_t echo_replies_received() const { return echo_rep_rx_; }
  std::uint64_t bad_checksums() const { return bad_checksum_; }
  std::uint64_t unreachables_sent() const { return unreach_tx_; }
  std::uint64_t unreachables_received() const { return unreach_rx_; }

 private:
  void handle(core::Mailbox& mb);  // the reader upcall (interrupt context)
  void handle_message(core::Message m);

  Ip& ip_;
  core::Mailbox& input_;
  core::Mailbox& scratch_;  // data areas for outgoing pings

  struct Pending {
    EchoCallback cb;
    sim::SimTime sent_at;
  };
  std::map<std::uint32_t, Pending> pending_;  // key: id<<16 | seq

  UnreachableHandler unreachable_handler_;
  std::uint64_t echo_req_rx_ = 0;
  std::uint64_t echo_rep_tx_ = 0;
  std::uint64_t echo_rep_rx_ = 0;
  std::uint64_t bad_checksum_ = 0;
  std::uint64_t unreach_tx_ = 0;
  std::uint64_t unreach_rx_ = 0;
};

}  // namespace nectar::proto
