// Protocol-engine edge cases: socket close semantics, blocking receive,
// failed connects, and oversized receive buffers.

#include <gtest/gtest.h>

#include "host/node.hpp"

namespace nectar::host {
namespace {

struct Fixture {
  net::NectarSystem sys{2, /*with_vme=*/true};
  HostNode h0{sys, 0};
  HostNode h1{sys, 1};
};

TEST(SocketsEdge, CloseDeliversEofToPeer) {
  Fixture f;
  std::size_t last_recv = 99;
  f.h1.host.run_process("server", [&] {
    HostTcpSocket s(f.h1.nin, f.h1.sockets, f.sys.stack(1).tcp);
    ASSERT_TRUE(s.listen(80));
    std::vector<std::uint8_t> buf(1024);
    last_recv = s.recv(buf);  // 0 = end of stream
  });
  f.h0.host.run_process("client", [&] {
    f.h0.host.cpu().sleep_for(sim::usec(500));
    HostTcpSocket s(f.h0.nin, f.h0.sockets, f.sys.stack(0).tcp);
    ASSERT_TRUE(s.connect(5000, proto::ip_of_node(1), 80));
    s.close();
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_EQ(last_recv, 0u);
}

TEST(SocketsEdge, ConnectToDeadPortFails) {
  Fixture f;
  bool connected = true;
  f.h0.host.run_process("client", [&] {
    HostTcpSocket s(f.h0.nin, f.h0.sockets, f.sys.stack(0).tcp);
    connected = s.connect(5000, proto::ip_of_node(1), 4444);  // nobody listens
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_FALSE(connected);
}

TEST(SocketsEdge, BlockingRecvFreesHostCpu) {
  Fixture f;
  std::string got;
  f.h1.host.run_process("server", [&] {
    HostTcpSocket s(f.h1.nin, f.h1.sockets, f.sys.stack(1).tcp);
    ASSERT_TRUE(s.listen(80));
    std::vector<std::uint8_t> buf(1024);
    std::size_t n = s.recv(buf, /*poll=*/false);  // blocking wait in the driver
    got.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
  });
  f.h0.host.run_process("client", [&] {
    f.h0.host.cpu().sleep_for(sim::usec(500));
    HostTcpSocket s(f.h0.nin, f.h0.sockets, f.sys.stack(0).tcp);
    ASSERT_TRUE(s.connect(5000, proto::ip_of_node(1), 80));
    f.h0.host.cpu().sleep_for(sim::msec(20));  // make the server wait a while
    std::vector<std::uint8_t> data{'l', 'a', 't', 'e'};
    s.send(data);
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_EQ(got, "late");
  // The 20 ms wait was spent blocked, not polling the bus.
  EXPECT_LT(f.h1.host.cpu().busy_time(), sim::msec(8));
}

TEST(SocketsEdge, RecvBufferTooSmallThrows) {
  Fixture f;
  bool threw = false;
  f.h1.host.run_process("server", [&] {
    HostTcpSocket s(f.h1.nin, f.h1.sockets, f.sys.stack(1).tcp);
    ASSERT_TRUE(s.listen(80));
    std::vector<std::uint8_t> tiny(8);
    try {
      s.recv(tiny);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  f.h0.host.run_process("client", [&] {
    f.h0.host.cpu().sleep_for(sim::usec(500));
    HostTcpSocket s(f.h0.nin, f.h0.sockets, f.sys.stack(0).tcp);
    ASSERT_TRUE(s.connect(5000, proto::ip_of_node(1), 80));
    std::vector<std::uint8_t> data(256, 1);
    s.send(data);
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(threw);
}

TEST(SocketsEdge, RecvBeforeConnectThrows) {
  Fixture f;
  bool threw = false;
  f.h0.host.run_process("p", [&] {
    HostTcpSocket s(f.h0.nin, f.h0.sockets, f.sys.stack(0).tcp);
    std::vector<std::uint8_t> buf(64);
    try {
      s.recv(buf);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  f.sys.net().run_until(sim::sec(1));
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace nectar::host
