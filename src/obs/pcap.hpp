#pragma once

// Packet capture on the simulated clock, in real pcap format.
//
// A PcapWriter is a tap attached to a hardware element (a hw::FiberLink
// transmitter, the VME network-device boundary): every packet that crosses
// the element is appended to a classic libpcap file with its simulated-time
// timestamp, openable by Wireshark / tcpdump / tshark. Two formats:
//
//   RawIp          LINKTYPE_RAW (101): records are bare IPv4 packets. The
//                  4-byte Nectar datalink header is stripped and non-IP
//                  packet types (RMP, datagram, ...) are skipped (counted in
//                  frames_skipped()). This is the format standard dissectors
//                  understand end-to-end.
//   DatalinkFrame  LINKTYPE_USER0 (147): records are whole Nectar datalink
//                  frames ([type, src_node, length] header + packet), for
//                  inspecting the Nectar-specific protocols.
//
// The file uses the nanosecond-resolution pcap magic (0xA1B23C4D): the
// simulation clock is integer nanoseconds, and timestamps survive exactly.
// Headers and records are written little-endian explicitly so a capture of
// a deterministic run is byte-identical everywhere (the golden-file test in
// tests/obs/pcap_test.cpp relies on this).
//
// The stream flushes and closes on destruction (RAII), so a capture is
// complete and well-formed even when a scenario ends mid-transfer.

#include <cstdint>
#include <fstream>
#include <span>
#include <string>

#include "sim/time.hpp"

namespace nectar::obs {

class PcapWriter {
 public:
  enum class Format {
    RawIp,          ///< LINKTYPE_RAW: bare IP packets only
    DatalinkFrame,  ///< LINKTYPE_USER0: whole Nectar datalink frames
  };

  PcapWriter(const std::string& path, Format format = Format::RawIp);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// False if the file could not be opened (nothing will be written).
  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }
  Format format() const { return format_; }

  /// Record a Nectar datalink frame (4-byte datalink header + packet) that
  /// crossed the tapped element at simulated time `ts`. RawIp strips the
  /// header and skips non-IP frames; DatalinkFrame records verbatim.
  void frame(sim::SimTime ts, std::span<const std::uint8_t> bytes);

  /// Record an already-bare packet (no datalink header) — the VME
  /// network-device boundary hands over raw IP packets.
  void packet(sim::SimTime ts, std::span<const std::uint8_t> bytes);

  std::uint64_t packets_written() const { return written_; }
  /// RawIp only: non-IP frames seen and skipped.
  std::uint64_t frames_skipped() const { return skipped_; }

  void flush();

 private:
  void record(sim::SimTime ts, std::span<const std::uint8_t> bytes);

  std::string path_;
  Format format_;
  std::ofstream out_;
  bool ok_ = false;
  std::uint64_t written_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace nectar::obs
