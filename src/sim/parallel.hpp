#pragma once

// Conservative parallel discrete-event coordinator.
//
// A ParallelEngine owns K shard Engines, each a fully independent
// single-threaded event loop with its own queue, event slab, and worker
// thread. Shards advance in lock-step *windows*: if the earliest pending
// event anywhere sits at T_min, and the cheapest cross-shard hop takes at
// least `lookahead` nanoseconds of simulated time, then no shard can
// receive a remote event before T_min + lookahead — so every shard may run
// [T_min, T_min + lookahead) without hearing from the others. At the window
// barrier the coordinator drains the cross-shard mailboxes, computes the
// next window, and repeats. This is classic conservative (CMB-style)
// synchronization with the lookahead derived from trunk fiber latency.
//
// Determinism contract:
//   * same seed + same shard count => byte-identical results. Mailboxes are
//     drained on the coordinator thread in (time, key, seq) order — key
//     identifies the sending element (e.g. HUB output port), seq is its
//     per-key counter — so insertion order into the destination queue never
//     depends on thread timing.
//   * shards == 1 bypasses the window machinery entirely: run_until()
//     delegates to the lone Engine on the calling thread, reproducing the
//     sequential simulator bit-for-bit (no worker threads are created).
//
// Wall-clock counters (work_ns, barrier_wait_ns) are host measurements and
// are deliberately kept out of anything byte-compared; only event counts,
// window counts, and mailbox statistics are deterministic.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nectar::obs {
class Registration;
}

namespace nectar::sim {

class ParallelEngine {
 public:
  /// `shards` >= 1. With one shard no threads are ever spawned.
  explicit ParallelEngine(int shards);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  Engine& shard(int i) { return *shards_.at(static_cast<std::size_t>(i)); }
  const Engine& shard(int i) const { return *shards_.at(static_cast<std::size_t>(i)); }

  /// Minimum simulated-time latency of any cross-shard edge, in ns. Zero
  /// means "no cross-shard edges": windows are unbounded and each run_until
  /// completes in a single window. Wiring code (net::Network) must reject
  /// any cross-shard link whose latency would lower this to zero.
  void set_lookahead(SimTime l);
  SimTime lookahead() const { return lookahead_; }

  /// Advance every shard to simulated time `t` (events at exactly `t`
  /// fire). Returns true if any shard still has later events pending.
  bool run_until(SimTime t);

  /// Run windows until every shard queue and mailbox is empty. Shard
  /// clocks end at the last window horizon (matching Engine::run_until
  /// semantics); they are not advanced further.
  void run();

  // --- cross-shard posting (called from shard worker threads) ---------------

  /// Enqueue `fn` for shard `dst` at simulated time `t`. `key` names the
  /// posting element and `seq` its per-key counter; together with `t` they
  /// define the deterministic drain order. Only the worker currently
  /// running shard `src` may post from `src` (single-writer mailboxes).
  void post(int src, int dst, SimTime t, std::uint64_t key, std::uint64_t seq, Engine::Action fn);

  // --- deterministic statistics ---------------------------------------------

  std::uint64_t windows() const { return windows_; }
  std::uint64_t cross_events() const { return cross_events_; }
  /// Largest single-barrier mailbox drain (events crossing one window edge).
  std::size_t mailbox_highwater() const { return mailbox_highwater_; }
  std::uint64_t total_events() const;
  std::uint64_t shard_events(int i) const {
    return shards_.at(static_cast<std::size_t>(i))->events_processed();
  }
  /// Sum over windows of the busiest shard's event count: the number of
  /// events a perfectly parallel host could not avoid executing serially.
  /// total_events() / critical_path_events() is the speedup an ideal
  /// K-core host gets from this partition — a deterministic scaling metric
  /// independent of host core count.
  std::uint64_t critical_path_events() const { return critical_events_; }

  // --- wall-clock statistics (host-dependent; never byte-compared) ----------

  std::uint64_t shard_work_ns(int i) const {
    return work_ns_.at(static_cast<std::size_t>(i));
  }
  std::uint64_t shard_barrier_wait_ns(int i) const {
    return barrier_wait_ns_.at(static_cast<std::size_t>(i));
  }

  /// Probes under (node -1, "sim.parallel"): per-shard event counts and
  /// wall-clock work/barrier-wait, plus window/mailbox statistics.
  void register_metrics(obs::Registration& reg) const;

 private:
  struct CrossEvent {
    SimTime time;
    std::uint64_t key;
    std::uint64_t seq;
    int dst;
    Engine::Action fn;
  };

  void start_workers();
  void worker_main(int i);
  /// One barrier cycle: release every worker to run_until(horizon - 1)
  /// (horizon -1: run to empty), wait for all of them, account the window.
  void run_window(SimTime horizon);
  void drain_mailboxes();
  /// Earliest pending event time across shards, or -1 if all queues are
  /// empty (mailboxes must already be drained). Non-const: prunes
  /// cancelled heap entries while peeking.
  SimTime next_event_time();

  std::vector<std::unique_ptr<Engine>> shards_;
  SimTime lookahead_ = 0;

  // Single-writer mailboxes: outbox_[src] is written only by the worker
  // running shard src during a window; the barrier's mutex hand-off orders
  // those writes before the coordinator's drain.
  std::vector<std::vector<CrossEvent>> outbox_;
  std::vector<CrossEvent> scratch_;

  std::uint64_t windows_ = 0;
  std::uint64_t cross_events_ = 0;
  std::uint64_t critical_events_ = 0;
  std::size_t mailbox_highwater_ = 0;
  std::vector<std::uint64_t> window_base_;
  std::vector<std::uint64_t> work_ns_;
  std::vector<std::uint64_t> barrier_wait_ns_;

  // Epoch barrier: run_window publishes {horizon_, epoch_} under m_ and
  // wakes the workers; each worker runs its shard, then the last one to
  // finish wakes the coordinator via cv_done_.
  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  SimTime horizon_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace nectar::sim
