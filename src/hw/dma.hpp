#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "hw/fifo.hpp"
#include "hw/frame.hpp"
#include "hw/link.hpp"
#include "hw/memory.hpp"
#include "hw/vme.hpp"
#include "sim/engine.hpp"

namespace nectar::hw {

/// CAB DMA controller (paper §2.2): manages simultaneous transfers between
/// the incoming/outgoing fibers and CAB memory, and between VME and CAB
/// memory, leaving the CAB CPU free. Handles low-level flow control (waits
/// for FIFO data / drain). DMA touches the *data* memory region only;
/// attempts to DMA program memory fault.
class DmaController {
 public:
  DmaController(sim::Engine& engine, CabMemory& memory, FiberInFifo& in_fifo, FiberLink& out_link,
                VmeBus* vme);

  // ---- Receive channel (fiber in -> data memory) -------------------------

  /// Drain the FIFO's front frame into memory at `dst`, skipping the first
  /// `skip` payload bytes (the datalink header the CPU already consumed).
  /// When `dst` is kDiscard the payload is drained but not stored.
  /// `done(frame, crc_ok)` fires when the last byte has been moved;
  /// `crc_ok` is the hardware CRC verdict.
  static constexpr CabAddr kDiscard = 0xFFFFFFFFu;
  using RecvDone = sim::InplaceFunction<void(FiberInFifo::ArrivedFrame, bool), 48>;
  void start_recv(CabAddr dst, std::size_t skip, RecvDone done);
  bool recv_busy() const { return recv_busy_; }

  // ---- Send channel (data memory -> fiber out) ---------------------------

  /// Transmit a frame: `header` (datalink + protocol header bytes, gathered
  /// from the CPU's composition buffer) followed by `len` bytes from data
  /// memory at `src`. The header bytes are copied into the frame's pooled
  /// payload buffer before this returns; `header` need not outlive the call.
  /// Hardware computes the CRC over the payload as it streams out.
  /// `done` fires when the last byte has left the transmitter.
  /// `trace` (optional) is the causal-trace context mirrored onto the frame
  /// so fabric elements can attribute time to the sampled message.
  void start_send(RouteRef route, std::span<const std::uint8_t> header, CabAddr src,
                  std::size_t len, SendCallback done, int src_node = -1,
                  obs::TraceContext trace = {});

  /// Multicast transmit: identical to start_send but the frame carries a
  /// distribution tree instead of a unicast route; every HUB it reaches
  /// replicates it per the tree (hw::McastTree). One send-channel pass, one
  /// fiber serialization — the fan-out happens in the fabric.
  void start_send_mcast(McastRef mcast, std::span<const std::uint8_t> header, CabAddr src,
                        std::size_t len, SendCallback done, int src_node = -1,
                        obs::TraceContext trace = {});

  // ---- VME channel (host memory <-> data memory) -------------------------

  /// Block-copy host memory into CAB data memory. The host span must stay
  /// alive until `done`.
  void start_vme_to_cab(std::span<const std::uint8_t> host_src, CabAddr dst,
                        std::function<void()> done);
  /// Block-copy CAB data memory out to host memory.
  void start_cab_to_vme(CabAddr src, std::span<std::uint8_t> host_dst, std::function<void()> done);

  std::uint64_t recv_frames() const { return recv_frames_; }
  std::uint64_t recv_crc_errors() const { return recv_crc_errors_; }
  std::uint64_t send_frames() const { return send_frames_; }
  std::uint64_t vme_transfers() const { return vme_transfers_; }

  /// Record fiber-channel occupancy (recv drain / send setup) into `profiler`
  /// under `name` ("node<i>.dma"). VME-channel occupancy is recorded by the
  /// VmeBus itself. nullptr detaches.
  void attach_profiler(obs::Profiler* profiler, std::string name) {
    profiler_ = profiler;
    profile_name_ = std::move(name);
  }

 private:
  void check_dma_range(CabAddr a, std::size_t len) const;
  void flush_send();   // channel-setup elapsed: hand the next frame to the link
  void finish_recv();  // last byte arrived: pop the FIFO and report CRC

  sim::Engine& engine_;
  CabMemory& memory_;
  FiberInFifo& in_fifo_;
  FiberLink& out_link_;
  VmeBus* vme_;

  // Pending state lives in the controller, not in event captures, so the
  // scheduled events stay small enough for the engine's inline slots.
  struct PendingSend {
    Frame frame;
    SendCallback done;
  };
  std::deque<PendingSend> send_queue_;
  RecvDone recv_done_;

  obs::Profiler* profiler_ = nullptr;
  std::string profile_name_;

  bool recv_busy_ = false;
  std::uint64_t recv_frames_ = 0;
  std::uint64_t recv_crc_errors_ = 0;
  std::uint64_t send_frames_ = 0;
  std::uint64_t vme_transfers_ = 0;
  std::uint64_t next_frame_id_ = 1;
};

}  // namespace nectar::hw
