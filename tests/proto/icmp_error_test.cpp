#include <gtest/gtest.h>

#include "net/system.hpp"

namespace nectar::proto {
namespace {

TEST(IcmpError, ProtocolUnreachableGenerated) {
  net::NectarSystem sys(2);
  std::uint8_t got_code = 0xFF;
  IpAddr offending_dst = 0;
  sys.stack(0).icmp.set_unreachable_handler([&](std::uint8_t code, const IpHeader& off) {
    got_code = code;
    offending_dst = off.dst;
  });
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    core::Message m = s.begin_put(32);
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = 123;  // nobody registered on node 1
    sys.stack(0).ip.output_msg(info, {}, m, true);
  });
  sys.engine().run();
  EXPECT_EQ(sys.stack(1).icmp.unreachables_sent(), 1u);
  EXPECT_EQ(sys.stack(0).icmp.unreachables_received(), 1u);
  EXPECT_EQ(got_code, 2);  // protocol unreachable
  EXPECT_EQ(offending_dst, ip_of_node(1));  // the quoted offending header
}

TEST(IcmpError, PortUnreachableGenerated) {
  net::NectarSystem sys(2);
  std::uint8_t got_code = 0xFF;
  sys.stack(0).icmp.set_unreachable_handler(
      [&](std::uint8_t code, const IpHeader&) { got_code = code; });
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    core::Message m = s.begin_put(16);
    sys.stack(0).udp.send(1234, ip_of_node(1), 4242, m);  // port 4242 unbound
  });
  sys.engine().run();
  EXPECT_EQ(sys.stack(1).udp.dropped_no_port(), 1u);
  EXPECT_EQ(sys.stack(1).icmp.unreachables_sent(), 1u);
  EXPECT_EQ(got_code, 3);  // port unreachable
}

TEST(IcmpError, NoErrorStormFromErrors) {
  // An unreachable answering an unreachable would loop forever; the sender
  // check (src == self) and ICMP being always registered prevent it.
  net::NectarSystem sys(2);
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    for (int i = 0; i < 3; ++i) {
      core::Message m = s.begin_put(16);
      Ip::OutputInfo info;
      info.dst = ip_of_node(1);
      info.protocol = 99;
      sys.stack(0).ip.output_msg(info, {}, m, true);
    }
  });
  sys.engine().run();
  // Exactly one error per offending datagram, none in response to errors.
  EXPECT_EQ(sys.stack(1).icmp.unreachables_sent(), 3u);
  EXPECT_EQ(sys.stack(0).icmp.unreachables_sent(), 0u);
  EXPECT_EQ(sys.stack(0).icmp.unreachables_received(), 3u);
}

TEST(IcmpError, UnreachableChecksumVerifies) {
  // The generated error passes the receiver's ICMP checksum (it would be
  // dropped and counted as bad otherwise).
  net::NectarSystem sys(2);
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    core::Message m = s.begin_put(64);
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = 250;
    sys.stack(0).ip.output_msg(info, {}, m, true);
  });
  sys.engine().run();
  EXPECT_EQ(sys.stack(0).icmp.bad_checksums(), 0u);
  EXPECT_EQ(sys.stack(0).icmp.unreachables_received(), 1u);
}

}  // namespace
}  // namespace nectar::proto
