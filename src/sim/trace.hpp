#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nectar::sim {

class Engine;

/// Lightweight span/event recorder used to reproduce the paper's Figure 6
/// latency breakdown: components mark named points and spans on the simulated
/// clock; the benchmark harness turns them into a per-stage budget.
class TraceRecorder {
 public:
  explicit TraceRecorder(Engine& engine) : engine_(engine) {}

  struct Mark {
    std::string label;
    SimTime time;
  };
  struct Span {
    std::string label;
    SimTime start;
    SimTime end;
    SimTime duration() const { return end - start; }
  };

  /// Record an instantaneous named event.
  void mark(std::string label);

  /// Open/close a named span. Spans with the same label may not nest.
  void begin(std::string label);
  void end(const std::string& label);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  const std::vector<Mark>& marks() const { return marks_; }
  const std::vector<Span>& spans() const { return spans_; }

  /// Time of the first mark with this label, or -1 if absent.
  SimTime mark_time(const std::string& label) const;

  /// Total duration of all spans with this label (0 if absent).
  SimTime span_total(const std::string& label) const;

  void clear();

 private:
  Engine& engine_;
  bool enabled_ = true;
  std::vector<Mark> marks_;
  std::vector<Span> spans_;
  std::vector<Span> open_;  // spans begun but not yet ended
};

}  // namespace nectar::sim
