#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"

namespace nectar::core {
namespace {

struct Fixture {
  sim::Engine engine;
  hw::CabBoard board{engine, "cab0", 0};
  CabRuntime rt{board};
};

TEST(Runtime, MailboxRegistryAssignsSequentialIndices) {
  Fixture f;
  Mailbox& a = f.rt.create_mailbox("a");
  Mailbox& b = f.rt.create_mailbox("b");
  EXPECT_EQ(a.address().node, 0);
  EXPECT_EQ(b.address().index, a.address().index + 1);
  EXPECT_EQ(f.rt.find_mailbox(a.address().index), &a);
  EXPECT_EQ(f.rt.find_mailbox(b.address().index), &b);
  EXPECT_EQ(f.rt.find_mailbox(9999), nullptr);
  EXPECT_EQ(f.rt.mailbox_count(), 2u);
}

TEST(Runtime, SystemThreadsOutrankApplicationThreads) {
  Fixture f;
  std::vector<std::string> order;
  f.rt.fork_app("app", [&] { order.push_back("app"); });
  f.rt.fork_system("sys", [&] { order.push_back("sys"); });
  f.engine.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "sys");
}

TEST(Runtime, DoorbellDrivesSignalQueueAtInterruptLevel) {
  Fixture f;
  bool handled = false;
  bool was_irq = false;
  f.rt.signals().register_opcode(9, [&](SignalElement) {
    handled = true;
    was_irq = f.rt.cpu().in_interrupt();
  });
  f.rt.signals().post_to_cab({9, 0, 0});
  f.board.ring_doorbell();
  f.engine.run();
  EXPECT_TRUE(handled);
  EXPECT_TRUE(was_irq);
}

TEST(Runtime, PacketHandlerRunsInInterruptContext) {
  Fixture f;
  f.board.out_link().attach(&f.board.in_fifo());  // loopback
  bool handled = false;
  bool was_irq = false;
  f.rt.set_packet_handler([&] {
    handled = true;
    was_irq = f.rt.cpu().in_interrupt();
    // Drain so the frame does not leak.
    f.board.dma().start_recv(hw::DmaController::kDiscard, 0,
                             [](hw::FiberInFifo::ArrivedFrame, bool) {});
  });
  f.board.memory().write32(hw::kDataBase, 42);
  f.board.dma().start_send({}, {}, hw::kDataBase, 4, [] {}, 0);
  f.engine.run();
  EXPECT_TRUE(handled);
  EXPECT_TRUE(was_irq);
}

TEST(Runtime, TraceMarksFlowToSharedRecorder) {
  sim::Engine engine;
  sim::TraceRecorder trace(engine);
  hw::CabBoard board(engine, "cab0", 0);
  CabRuntime rt(board, &trace);
  rt.fork_system("t", [&] {
    rt.cpu().charge(sim::usec(5));
    rt.trace_mark("checkpoint");
  });
  engine.run();
  EXPECT_GT(trace.mark_time("checkpoint"), 0);
}

TEST(Runtime, TraceMarkWithoutRecorderIsSafe) {
  Fixture f;
  f.rt.fork_system("t", [&] { f.rt.trace_mark("nobody-listens"); });
  f.engine.run();
  SUCCEED();
}

TEST(Runtime, HeapLivesInDataRegion) {
  Fixture f;
  EXPECT_EQ(f.rt.heap().capacity(), hw::kDataSize);
  hw::CabAddr a = f.rt.heap().alloc(128);
  EXPECT_TRUE(hw::CabMemory::in_data_region(a, 128));
  f.rt.heap().free(a);
}

TEST(Runtime, ManyThreadsShareTheCpuFairly) {
  Fixture f;
  constexpr int kThreads = 8;
  std::vector<int> rounds(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    f.rt.fork_app("worker", [&f, &rounds, i] {
      for (int r = 0; r < 10; ++r) {
        f.rt.cpu().charge(sim::usec(10));
        rounds[static_cast<std::size_t>(i)] = r + 1;
        f.rt.cpu().yield();
      }
    });
  }
  f.engine.run();
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(rounds[static_cast<std::size_t>(i)], 10);
}

TEST(Runtime, BusyTimeAccountsChargedWork) {
  Fixture f;
  f.rt.fork_system("t", [&] { f.rt.cpu().charge(sim::usec(123)); });
  f.engine.run();
  // Work + context switch; no more than a handful of switches.
  EXPECT_GE(f.rt.cpu().busy_time(), sim::usec(123));
  EXPECT_LE(f.rt.cpu().busy_time(), sim::usec(123) + 3 * sim::costs::kContextSwitch);
}

}  // namespace
}  // namespace nectar::core
