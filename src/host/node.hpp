#pragma once

#include <memory>
#include <string>

#include "host/driver.hpp"
#include "host/netdev.hpp"
#include "host/process.hpp"
#include "host/sockets.hpp"
#include "nectarine/nectarine.hpp"
#include "net/system.hpp"

namespace nectar::host {

/// One complete Nectar installation seat: a workstation host, its CAB (from
/// a NectarSystem built with VME buses), the device driver, Nectarine, the
/// CAB-side services, and the protocol-engine socket server. This is the
/// configuration the paper's Table 1 / Fig. 6 / Fig. 8 host measurements ran
/// on.
struct HostNode {
  Host host;
  CabDriver driver;
  nectarine::HostNectarine nin;
  nectarine::CabServices services;
  SocketServer sockets;

  HostNode(net::NectarSystem& sys, int node)
      : host(sys.engine(), "host" + std::to_string(node)),
        driver(host, sys.runtime(node)),
        nin(driver),
        services(sys.runtime(node), sys.stack(node).reqresp),
        sockets(sys.runtime(node), sys.stack(node).tcp, sys.stack(node).datagram,
                sys.stack(node).rmp, &sys.stack(node).udp, &sys.stack(node).reqresp),
        metrics_reg_(sys.net().metrics()) {
    // The host CPU is its own swimlane next to the node's CAB/VME/wire rows.
    obs::Tracer& tracer = sys.net().tracer();
    host.cpu().attach_tracer(&tracer, tracer.track("node" + std::to_string(node), "host.cpu"));
    host.cpu().attach_profiler(&sys.net().profiler());
    host.cpu().register_metrics(metrics_reg_, node, "host.cpu");
  }

 private:
  // Last member: its probes read host.cpu, which must still exist on release.
  obs::Registration metrics_reg_;
};

}  // namespace nectar::host
