#include "nproto/reqresp.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/system.hpp"

namespace nectar::nproto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

/// An uppercase-echo RPC server on node `n`.
void run_server(net::NectarSystem& sys, int n, core::Mailbox& svc, int requests) {
  sys.runtime(n).fork_system("server", [&sys, n, &svc, requests] {
    for (int i = 0; i < requests; ++i) {
      core::Message req = svc.begin_get();
      auto info = ReqResp::parse_request(sys.runtime(n), req);
      core::Message payload = ReqResp::payload_of(req);
      std::string data = read_bytes(sys.runtime(n), payload);
      for (char& ch : data) ch = static_cast<char>(std::toupper(ch));
      svc.end_get(payload);
      core::Mailbox& s = sys.runtime(n).create_mailbox("rsp" + std::to_string(i));
      sys.stack(n).reqresp.respond(info, stage(s, sys.runtime(n), data));
    }
  });
}

TEST(ReqRespTest, BasicRpcRoundTrip) {
  net::NectarSystem sys(2);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("service");
  run_server(sys, 1, svc, 1);
  std::string result;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    core::Message rsp = sys.stack(0).reqresp.call(svc.address(), stage(s, sys.runtime(0), "rpc"));
    result = read_bytes(sys.runtime(0), rsp);
    s.end_get(rsp);
  });
  sys.engine().run();
  EXPECT_EQ(result, "RPC");
  EXPECT_EQ(sys.stack(0).reqresp.calls_sent(), 1u);
  EXPECT_EQ(sys.stack(1).reqresp.responses_sent(), 1u);
}

TEST(ReqRespTest, SequentialCallsGetDistinctResponses) {
  net::NectarSystem sys(2);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("service");
  run_server(sys, 1, svc, 5);
  std::vector<std::string> results;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < 5; ++i) {
      core::Message rsp =
          sys.stack(0).reqresp.call(svc.address(), stage(s, sys.runtime(0), "q" + std::to_string(i)));
      results.push_back(read_bytes(sys.runtime(0), rsp));
      s.end_get(rsp);
    }
  });
  sys.engine().run();
  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], "Q" + std::to_string(i));
}

TEST(ReqRespTest, RetriesThroughLostRequests) {
  net::NectarSystem sys(2);
  sys.net().cab(0).out_link().set_drop_rate(0.4, 21);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("service");
  run_server(sys, 1, svc, 3);
  std::vector<std::string> results;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < 3; ++i) {
      core::Message rsp =
          sys.stack(0).reqresp.call(svc.address(), stage(s, sys.runtime(0), "x" + std::to_string(i)));
      results.push_back(read_bytes(sys.runtime(0), rsp));
      s.end_get(rsp);
    }
  });
  sys.net().run_until(sim::sec(5));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[2], "X2");
  EXPECT_GT(sys.stack(0).reqresp.retries(), 0u);
}

TEST(ReqRespTest, LostResponseReplayedNotReexecuted) {
  net::NectarSystem sys(2);
  // Drop replies sometimes: server executes once, replays cached response.
  sys.net().cab(1).out_link().set_drop_rate(0.4, 33);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("service");
  int executions = 0;
  sys.runtime(1).fork_system("server", [&] {
    for (int i = 0; i < 3; ++i) {
      core::Message req = svc.begin_get();
      auto info = ReqResp::parse_request(sys.runtime(1), req);
      ++executions;
      svc.end_get(ReqResp::payload_of(req));
      core::Mailbox& s = sys.runtime(1).create_mailbox("rsp" + std::to_string(i));
      sys.stack(1).reqresp.respond(info, stage(s, sys.runtime(1), "ok" + std::to_string(i)));
    }
  });
  std::vector<std::string> results;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < 3; ++i) {
      core::Message rsp =
          sys.stack(0).reqresp.call(svc.address(), stage(s, sys.runtime(0), "c" + std::to_string(i)));
      results.push_back(read_bytes(sys.runtime(0), rsp));
      s.end_get(rsp);
    }
  });
  sys.net().run_until(sim::sec(10));
  ASSERT_EQ(results.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], "ok" + std::to_string(i));
  // At-most-once: each request executed exactly once despite duplicates.
  EXPECT_EQ(executions, 3);
}

TEST(ReqRespTest, CallFailsAfterMaxRetries) {
  net::NectarSystem sys(2);
  sys.net().cab(0).out_link().set_drop_rate(1.0, 3);  // nothing ever arrives
  bool threw = false;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    try {
      core::Message rsp = sys.stack(0).reqresp.call({1, 1}, stage(s, sys.runtime(0), "lost"));
      s.end_get(rsp);
    } catch (const std::runtime_error&) {
      threw = true;
    }
  });
  sys.net().run_until(sim::sec(5));
  EXPECT_TRUE(threw);
}

TEST(ReqRespTest, RpcLatencyUnderHalfMillisecond) {
  // §6: "The latency of a remote procedure call between application tasks
  // executing on two Nectar hosts is less than 500 usec" — CAB-to-CAB must
  // be comfortably under that.
  net::NectarSystem sys(2);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("service");
  run_server(sys, 1, svc, 1);
  sim::SimTime rtt = -1;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    sim::SimTime t0 = sys.engine().now();
    core::Message rsp = sys.stack(0).reqresp.call(svc.address(), stage(s, sys.runtime(0), "hi"));
    rtt = sys.engine().now() - t0;
    s.end_get(rsp);
  });
  sys.engine().run();
  ASSERT_GT(rtt, 0);
  EXPECT_LT(rtt, sim::usec(500));
}

}  // namespace
}  // namespace nectar::nproto
