#include "scenario/config.hpp"

#include <gtest/gtest.h>

#include "scenario/engine.hpp"

namespace nectar::scenario {
namespace {

TEST(ConfigTest, ParsesSectionsAndValues) {
  Config cfg = Config::parse_string(
      "[scenario]\n"
      "name = smoke\n"
      "seed = 42\n"
      "\n"
      "[topology]\n"
      "kind = star\n"
      "nodes = 8\n");
  const Section* s = cfg.find("scenario");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->get("name", ""), "smoke");
  EXPECT_EQ(s->get_int("seed", 0), 42);
  EXPECT_EQ(cfg.find("topology")->get_int("nodes", 0), 8);
  EXPECT_EQ(cfg.find("missing"), nullptr);
}

TEST(ConfigTest, RepeatedSectionsKeepFileOrder) {
  Config cfg = Config::parse_string(
      "[workload]\nname = a\n"
      "[fault]\nkind = link_drop\n"
      "[workload]\nname = b\n");
  auto wls = cfg.all("workload");
  ASSERT_EQ(wls.size(), 2u);
  EXPECT_EQ(wls[0]->get("name", ""), "a");
  EXPECT_EQ(wls[1]->get("name", ""), "b");
  EXPECT_EQ(cfg.all("fault").size(), 1u);
}

TEST(ConfigTest, CommentsAndWhitespaceIgnored) {
  Config cfg = Config::parse_string(
      "# leading comment\n"
      "  [a]  \n"
      "; alt comment style\n"
      "  key =   spaced value  \n");
  EXPECT_EQ(cfg.find("a")->get("key", ""), "spaced value");
}

TEST(ConfigTest, DurationSuffixes) {
  EXPECT_EQ(parse_time("250"), 250);
  EXPECT_EQ(parse_time("250ns"), 250);
  EXPECT_EQ(parse_time("250us"), sim::usec(250));
  EXPECT_EQ(parse_time("5ms"), sim::msec(5));
  EXPECT_EQ(parse_time("2s"), sim::sec(2));
  EXPECT_EQ(parse_time("1.5ms"), sim::usec(1500));
  EXPECT_THROW(parse_time("5 fortnights"), std::runtime_error);
  EXPECT_THROW(parse_time("fast"), std::runtime_error);
}

TEST(ConfigTest, TypedGettersValidate) {
  Config cfg = Config::parse_string("[s]\nn = 12\nf = 0.5\nb = yes\nt = 3ms\nbad = zzz\n");
  const Section* s = cfg.find("s");
  EXPECT_EQ(s->get_int("n", 0), 12);
  EXPECT_DOUBLE_EQ(s->get_double("f", 0), 0.5);
  EXPECT_TRUE(s->get_bool("b", false));
  EXPECT_EQ(s->get_time("t", 0), sim::msec(3));
  EXPECT_EQ(s->get_int("absent", 7), 7);
  EXPECT_THROW(s->get_int("bad", 0), std::runtime_error);
  EXPECT_THROW(s->get_bool("bad", false), std::runtime_error);
  EXPECT_THROW(s->get_time("bad", 0), std::runtime_error);
}

TEST(ConfigTest, MalformedInputThrowsWithLineNumber) {
  try {
    Config::parse_string("[ok]\nkey = 1\nnot-a-kv-line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
  EXPECT_THROW(Config::parse_string("[unclosed\n"), std::runtime_error);
  EXPECT_THROW(Config::parse_string("[s]\na = 1\na = 2\n"), std::runtime_error);
  EXPECT_THROW(Config::parse_string("[s]\n= nokey\n"), std::runtime_error);
}

// A misspelled key in ANY section must fail loudly at parse time: every
// section added since the scenario engine landed carries the same
// check_keys contract. One case per section, each with a plausible typo.
TEST(ConfigTest, EverySectionRejectsUnknownKeys) {
  auto rejects = [](const std::string& ini) {
    try {
      ScenarioSpec::from_config(Config::parse_string(ini));
      return false;
    } catch (const std::runtime_error& e) {
      return std::string(e.what()).find("unknown key") != std::string::npos;
    }
  };
  EXPECT_TRUE(rejects("[scenario]\nsede = 1\n"));
  EXPECT_TRUE(rejects("[topology]\nnode = 4\n"));
  EXPECT_TRUE(rejects("[workload]\nproto = rmp\nrat = 100\n"));
  EXPECT_TRUE(rejects("[fault]\nkind = link_drop\ntargt = node0.link\n"));
  EXPECT_TRUE(rejects("[capture]\nelement = node0.link\nfile = x.pcap\nfromat = raw_ip\n"));
  EXPECT_TRUE(rejects("[profile]\nfoldd = out.folded\n"));
  // Sections added after PR 3, same contract:
  EXPECT_TRUE(rejects("[parallel]\nshard = 4\n"));
  EXPECT_TRUE(rejects("[routing]\npath = 2\n"));
  EXPECT_TRUE(rejects("[collectives]\nopp = barrier\n"));
  EXPECT_TRUE(rejects("[telemetry]\nintervall = 1ms\n"));
  EXPECT_TRUE(rejects("[tracing]\nsampel = 0.5\n"));
  EXPECT_TRUE(rejects("[sessions]\nchanels = 100\n"));
}

// Disabled sections still validate their values — a typo'd *value* must not
// hide behind enabled=false.
TEST(ConfigTest, DisabledSectionsStillValidateValues) {
  EXPECT_THROW(
      ScenarioSpec::from_config(Config::parse_string("[collectives]\nop = gather\n")),
      std::invalid_argument);
  EXPECT_THROW(
      ScenarioSpec::from_config(Config::parse_string("[sessions]\ntrunk_proto = udp\n")),
      std::runtime_error);
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[sessions]\nclasses = 9\n")),
               std::runtime_error);
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[sessions]\nsize = 4\n")),
               std::runtime_error);
}

}  // namespace
}  // namespace nectar::scenario
