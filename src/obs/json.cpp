#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace nectar::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  // Integral doubles print without a mantissa tail so reports stay tidy.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.0", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Double: out += format_double(dbl_); break;
    case Type::String:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        out += '"';
        out += escape(members_[i].first);
        out += pretty ? "\": " : "\":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parser ----------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) fail("bad literal");
    pos_ += w.size();
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_word("true"); return Value(true);
      case 'f': expect_word("false"); return Value(false);
      case 'n': expect_word("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      char c = take();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      char e = take();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // BMP-only UTF-8 encoding; enough for exporter output (ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    bool is_double = false;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
    std::string tok(text_.substr(start, pos_ - start));
    try {
      if (is_double) return Value(std::stod(tok));
      return Value(static_cast<std::int64_t>(std::stoll(tok)));
    } catch (const std::exception&) {
      fail("unparseable number '" + tok + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace nectar::obs::json
