// TCP state-machine edge cases beyond the happy paths in tcp_test.cpp:
// half-close with data, simultaneous close, RST mid-transfer, sequential
// connections on one port, and zero-window stalls with recovery.

#include <gtest/gtest.h>

#include <string>

#include "net/system.hpp"

namespace nectar::proto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

TEST(TcpStates, HalfCloseStillDeliversPeerData) {
  // Client closes its direction, then keeps RECEIVING server data — the
  // FIN-WAIT-2 half of full-duplex close.
  net::NectarSystem sys(2);
  std::string server_data(8000, 'h');
  std::string got_at_client;
  TcpConnection* client = nullptr;
  sys.runtime(1).fork_app("server", [&] {
    TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    // Wait for the client's FIN (EOF marker).
    core::Message m = c->receive_mailbox().begin_get();
    EXPECT_EQ(m.len, 0u);
    c->receive_mailbox().end_get(m);
    // Our direction is still open: send data into the half-closed pipe.
    core::Mailbox& s = sys.runtime(1).create_mailbox("tx");
    sys.stack(1).tcp.send(c, stage(s, sys.runtime(1), server_data));
    sys.stack(1).tcp.wait_drained(c);
    sys.stack(1).tcp.close(c);
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    client = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(sys.stack(0).tcp.wait_established(client));
    sys.stack(0).tcp.close(client);  // half-close: we send nothing more
    while (got_at_client.size() < server_data.size()) {
      core::Message m = client->receive_mailbox().begin_get();
      if (m.len == 0) {
        client->receive_mailbox().end_get(m);
        break;
      }
      got_at_client += read_bytes(sys.runtime(0), m);
      client->receive_mailbox().end_get(m);
    }
  });
  sys.net().run_until(sim::sec(5));
  EXPECT_EQ(got_at_client, server_data);
  EXPECT_EQ(client->state(), TcpConnection::State::Closed);  // via TIME_WAIT
}

TEST(TcpStates, SimultaneousCloseReachesClosedOnBothSides) {
  net::NectarSystem sys(2);
  TcpConnection* a = nullptr;
  TcpConnection* b = nullptr;
  sys.runtime(1).fork_app("server", [&] {
    b = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(b);
    sys.stack(1).tcp.close(b);  // both sides close at essentially the same time
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    a = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(sys.stack(0).tcp.wait_established(a));
    sys.stack(0).tcp.close(a);
  });
  sys.net().run_until(sim::sec(5));
  EXPECT_EQ(a->state(), TcpConnection::State::Closed);
  EXPECT_EQ(b->state(), TcpConnection::State::Closed);
}

TEST(TcpStates, SequentialConnectionsOnOnePort) {
  // Two connect/transfer/close cycles against fresh listeners on port 80.
  net::NectarSystem sys(2);
  std::vector<std::string> got(2);
  sys.runtime(1).fork_app("server", [&] {
    for (int round = 0; round < 2; ++round) {
      TcpConnection* c = sys.stack(1).tcp.listen(80);
      sys.stack(1).tcp.wait_established(c);
      for (;;) {
        core::Message m = c->receive_mailbox().begin_get();
        if (m.len == 0) {
          c->receive_mailbox().end_get(m);
          break;
        }
        got[static_cast<std::size_t>(round)] += read_bytes(sys.runtime(1), m);
        c->receive_mailbox().end_get(m);
      }
      sys.stack(1).tcp.close(c);
    }
  });
  sys.runtime(0).fork_app("client", [&] {
    for (int round = 0; round < 2; ++round) {
      sys.runtime(0).cpu().sleep_for(sim::msec(30));  // let TIME_WAIT expire
      TcpConnection* c =
          sys.stack(0).tcp.connect(static_cast<std::uint16_t>(5000 + round), ip_of_node(1), 80);
      ASSERT_TRUE(sys.stack(0).tcp.wait_established(c));
      core::Mailbox& s = sys.runtime(0).create_mailbox("tx" + std::to_string(round));
      sys.stack(0).tcp.send(c, stage(s, sys.runtime(0), "round" + std::to_string(round)));
      sys.stack(0).tcp.wait_drained(c);
      sys.stack(0).tcp.close(c);
    }
  });
  sys.net().run_until(sim::sec(10));
  EXPECT_EQ(got[0], "round0");
  EXPECT_EQ(got[1], "round1");
}

TEST(TcpStates, PeerDisappearingMidTransferTimesOutWithRetransmissions) {
  // Sever the wire mid-stream: the sender must keep retransmitting (bounded
  // by the capped RTO), never crash, and never falsely report delivery.
  net::NectarSystem sys(2);
  TcpConnection* client = nullptr;
  std::size_t delivered = 0;
  sys.runtime(1).fork_app("server", [&] {
    TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    for (;;) {
      core::Message m = c->receive_mailbox().begin_get();
      delivered += m.len;
      c->receive_mailbox().end_get(m);
    }
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    client = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(sys.stack(0).tcp.wait_established(client));
    core::Mailbox& s = sys.runtime(0).create_mailbox("tx");
    sys.stack(0).tcp.send(client, stage(s, sys.runtime(0), std::string(20000, 'x')));
  });
  // Let some data through, then cut the link completely.
  sys.net().run_until(sim::msec(2));
  sys.net().cab(0).out_link().set_drop_rate(1.0, 1);
  sys.net().run_until(sim::sec(3));
  ASSERT_NE(client, nullptr);
  EXPECT_GT(client->retransmissions(), 2u);   // kept trying
  EXPECT_GT(client->unacked_bytes(), 0u);     // and knows it didn't finish
  EXPECT_LT(delivered, 20000u);
}

TEST(TcpStates, ZeroWindowStallRecoversThroughWindowUpdate) {
  // A receiver that stops consuming closes its window; when it resumes, the
  // window-update path (or probe) must restart the flow.
  net::NectarSystem sys(2);
  std::string data(60000, 'z');
  std::string got;
  sys.runtime(1).fork_app("server", [&] {
    TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    // Consume a little, nap long enough for the window to slam shut, resume.
    for (int i = 0; i < 2; ++i) {
      core::Message m = c->receive_mailbox().begin_get();
      got += read_bytes(sys.runtime(1), m);
      c->receive_mailbox().end_get(m);
    }
    sys.runtime(1).cpu().sleep_for(sim::msec(30));
    while (got.size() < data.size()) {
      core::Message m = c->receive_mailbox().begin_get();
      got += read_bytes(sys.runtime(1), m);
      c->receive_mailbox().end_get(m);
    }
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    TcpConnection* c = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(sys.stack(0).tcp.wait_established(c));
    core::Mailbox& s = sys.runtime(0).create_mailbox("tx");
    for (std::size_t off = 0; off < data.size(); off += 4000) {
      sys.stack(0).tcp.wait_send_window(c, 128 * 1024);
      sys.stack(0).tcp.send(c, stage(s, sys.runtime(0), data.substr(off, 4000)));
    }
  });
  sys.net().run_until(sim::sec(10));
  EXPECT_EQ(got, data);
}

}  // namespace
}  // namespace nectar::proto
