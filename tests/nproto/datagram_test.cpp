#include "nproto/datagram.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/system.hpp"

namespace nectar::nproto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

TEST(Datagram, DeliversToRemoteMailbox) {
  net::NectarSystem sys(2);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("service");
  std::string got;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    sys.stack(0).datagram.send(dst.address(), stage(s, sys.runtime(0), "hello mailbox"));
  });
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = dst.begin_get();
    got = read_bytes(sys.runtime(1), m);
    dst.end_get(m);
  });
  sys.engine().run();
  EXPECT_EQ(got, "hello mailbox");
  EXPECT_EQ(sys.stack(0).datagram.datagrams_sent(), 1u);
  EXPECT_EQ(sys.stack(1).datagram.datagrams_delivered(), 1u);
}

TEST(Datagram, UnknownMailboxDropped) {
  net::NectarSystem sys(2);
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    sys.stack(0).datagram.send({1, 9999}, stage(s, sys.runtime(0), "void"));
  });
  sys.engine().run();
  EXPECT_EQ(sys.stack(1).datagram.dropped_no_mailbox(), 1u);
}

TEST(Datagram, LossyWireLosesDatagramsSilently) {
  net::NectarSystem sys(2);
  sys.net().cab(0).out_link().set_drop_rate(1.0, 17);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("service");
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    sys.stack(0).datagram.send(dst.address(), stage(s, sys.runtime(0), "gone"));
  });
  sys.engine().run();
  EXPECT_EQ(dst.queued(), 0u);  // unreliable: no retransmission
  EXPECT_EQ(sys.stack(1).datagram.datagrams_delivered(), 0u);
}

TEST(Datagram, SenderInfoAvailableForReply) {
  net::NectarSystem sys(2);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("service");
  core::Mailbox& reply_box = sys.runtime(0).create_mailbox("replies");
  std::string reply;
  sys.runtime(1).fork_system("server", [&] {
    core::Message m = svc.begin_get();
    auto info = sys.stack(1).datagram.last_sender(svc);
    svc.end_get(m);
    core::Mailbox& s = sys.runtime(1).create_mailbox("scratch");
    sys.stack(1).datagram.send({info.src_node, info.src_mailbox},
                               stage(s, sys.runtime(1), "pong"));
  });
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    sys.stack(0).datagram.send(svc.address(), stage(s, sys.runtime(0), "ping"), true,
                               reply_box.address().index);
    core::Message m = reply_box.begin_get();
    reply = read_bytes(sys.runtime(0), m);
    reply_box.end_get(m);
  });
  sys.engine().run();
  EXPECT_EQ(reply, "pong");
}

TEST(Datagram, RoundTripLatencyIsLanScale) {
  // Table 1 sanity: a 64-byte datagram CAB-to-CAB round trip lands in the
  // low hundreds of microseconds.
  net::NectarSystem sys(2);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("echo");
  core::Mailbox& reply_box = sys.runtime(0).create_mailbox("replies");
  sim::SimTime rtt = -1;
  sys.runtime(1).fork_system("echo", [&] {
    core::Message m = svc.begin_get();
    auto info = sys.stack(1).datagram.last_sender(svc);
    sys.stack(1).datagram.send({info.src_node, info.src_mailbox}, m);
  });
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    core::Message m = s.begin_put(64);
    sim::SimTime t0 = sys.engine().now();
    sys.stack(0).datagram.send(svc.address(), m, true, reply_box.address().index);
    core::Message r = reply_box.begin_get();
    rtt = sys.engine().now() - t0;
    reply_box.end_get(r);
  });
  sys.engine().run();
  ASSERT_GT(rtt, 0);
  EXPECT_LT(rtt, sim::usec(400));
  EXPECT_GT(rtt, sim::usec(50));
}

TEST(Datagram, ManyMessagesArriveInOrder) {
  net::NectarSystem sys(2);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  std::vector<std::string> got;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < 12; ++i) {
      sys.stack(0).datagram.send(dst.address(), stage(s, sys.runtime(0), "d" + std::to_string(i)));
    }
  });
  sys.runtime(1).fork_system("recv", [&] {
    for (int i = 0; i < 12; ++i) {
      core::Message m = dst.begin_get();
      got.push_back(read_bytes(sys.runtime(1), m));
      dst.end_get(m);
    }
  });
  sys.engine().run();
  ASSERT_EQ(got.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], "d" + std::to_string(i));
}

TEST(Datagram, DeliveryHandlerRegistryInterceptsByIndex) {
  // New message classes register a consumer for a destination index instead
  // of growing a dispatch switch; the registry is checked before the runtime
  // mailbox table.
  net::NectarSystem sys(2);
  constexpr std::uint32_t kIndex = 4242;
  std::vector<std::string> got;
  DatagramProtocol::Info seen{};
  sys.stack(1).datagram.register_delivery_handler(
      kIndex, [&](const core::Message& m, const DatagramProtocol::Info& info) {
        got.push_back(read_bytes(sys.runtime(1), m));
        seen = info;
      });
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    sys.stack(0).datagram.send({1, kIndex}, stage(s, sys.runtime(0), "to handler"));
  });
  sys.engine().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "to handler");
  EXPECT_EQ(seen.src_node, 0);
  EXPECT_EQ(sys.stack(1).datagram.datagrams_delivered(), 1u);
  EXPECT_EQ(sys.stack(1).datagram.dropped_no_mailbox(), 0u);

  // After unregistering, the same index falls back to the mailbox table —
  // which has no such mailbox, so the datagram is counted as dropped.
  sys.stack(1).datagram.unregister_delivery_handler(kIndex);
  sys.runtime(0).fork_system("send2", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch2");
    sys.stack(0).datagram.send({1, kIndex}, stage(s, sys.runtime(0), "void"));
  });
  sys.engine().run();
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(sys.stack(1).datagram.dropped_no_mailbox(), 1u);
}

}  // namespace
}  // namespace nectar::nproto
