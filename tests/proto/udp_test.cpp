#include "proto/udp.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/system.hpp"

namespace nectar::proto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage_msg(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

struct UdpFixture {
  net::NectarSystem sys{2};
  core::Mailbox& port_rx;

  UdpFixture() : port_rx(sys.runtime(1).create_mailbox("udp-port-7")) {
    sys.stack(1).udp.bind(7, &port_rx);
  }

  void send(const std::string& payload, std::uint16_t dst_port = 7) {
    sys.runtime(0).fork_system("sender", [this, payload, dst_port] {
      core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
      core::Message m = stage_msg(scratch, sys.runtime(0), payload);
      sys.stack(0).udp.send(1234, ip_of_node(1), dst_port, m);
    });
  }
};

TEST(UdpTest, DatagramDeliveredToBoundPort) {
  UdpFixture f;
  std::string got;
  Udp::DatagramInfo info;
  f.send("udp-payload");
  f.sys.runtime(1).fork_system("recv", [&] {
    core::Message m = f.port_rx.begin_get();
    info = f.sys.stack(1).udp.info_of(m);
    core::Message payload = Udp::payload_of(m);
    got = read_bytes(f.sys.runtime(1), payload);
    f.port_rx.end_get(payload);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "udp-payload");
  EXPECT_EQ(info.src_addr, ip_of_node(0));
  EXPECT_EQ(info.src_port, 1234);
  EXPECT_EQ(info.dst_port, 7);
  EXPECT_EQ(info.payload_len, 11u);
  EXPECT_EQ(f.sys.stack(1).udp.datagrams_delivered(), 1u);
}

TEST(UdpTest, UnboundPortDropped) {
  UdpFixture f;
  f.send("nobody", 9999);
  f.sys.engine().run();
  EXPECT_EQ(f.sys.stack(1).udp.dropped_no_port(), 1u);
  EXPECT_EQ(f.port_rx.queued(), 0u);
}

TEST(UdpTest, UnbindStopsDelivery) {
  UdpFixture f;
  f.sys.stack(1).udp.unbind(7);
  f.send("late");
  f.sys.engine().run();
  EXPECT_EQ(f.sys.stack(1).udp.dropped_no_port(), 1u);
}

TEST(UdpTest, ChecksumProtectsPayload) {
  // Flip bytes *after* the datalink CRC is bypassed: simulate by corrupting
  // memory between checksum computation and verification is not possible in
  // this model, so instead verify that a valid checksum passes and that the
  // checksum field is nonzero on the wire.
  UdpFixture f;
  std::string got;
  f.send("checksummed");
  f.sys.runtime(1).fork_system("recv", [&] {
    core::Message m = f.port_rx.begin_get();
    UdpHeader uh = UdpHeader::parse(
        f.sys.runtime(1).board().memory().view(m.data + IpHeader::kSize, UdpHeader::kSize));
    EXPECT_NE(uh.checksum, 0);  // checksum was computed and transmitted
    got = read_bytes(f.sys.runtime(1), Udp::payload_of(m));
    f.port_rx.end_get(m);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "checksummed");
  EXPECT_EQ(f.sys.stack(1).udp.dropped_bad_checksum(), 0u);
}

TEST(UdpTest, RequestReplyBetweenNodes) {
  net::NectarSystem sys(2);
  core::Mailbox& server_rx = sys.runtime(1).create_mailbox("server");
  core::Mailbox& client_rx = sys.runtime(0).create_mailbox("client");
  sys.stack(1).udp.bind(53, &server_rx);
  sys.stack(0).udp.bind(1111, &client_rx);

  // Server: reverse the payload and send it back.
  sys.runtime(1).fork_system("server", [&] {
    core::Message m = server_rx.begin_get();
    auto info = sys.stack(1).udp.info_of(m);
    core::Message payload = Udp::payload_of(m);
    std::string req = read_bytes(sys.runtime(1), payload);
    std::string rsp(req.rbegin(), req.rend());
    core::Mailbox& scratch = sys.runtime(1).create_mailbox("scratch");
    core::Message out = stage_msg(scratch, sys.runtime(1), rsp);
    sys.stack(1).udp.send(53, info.src_addr, info.src_port, out);
    server_rx.end_get(payload);
  });

  std::string reply;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch0");
    core::Message m = stage_msg(scratch, sys.runtime(0), "hello");
    sys.stack(0).udp.send(1111, ip_of_node(1), 53, m);
    core::Message r = client_rx.begin_get();
    reply = read_bytes(sys.runtime(0), Udp::payload_of(r));
    client_rx.end_get(r);
  });
  sys.engine().run();
  EXPECT_EQ(reply, "olleh");
}

TEST(UdpTest, LargeDatagramFragmentsTransparently) {
  net::NectarSystem sys(2, false, {}, /*mtu=*/1500);
  core::Mailbox& rx = sys.runtime(1).create_mailbox("rx");
  sys.stack(1).udp.bind(7, &rx);
  std::string big;
  for (int i = 0; i < 6000; ++i) big.push_back(static_cast<char>('A' + i % 23));
  std::string got;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("s");
    core::Message m = stage_msg(scratch, sys.runtime(0), big);
    sys.stack(0).udp.send(5, ip_of_node(1), 7, m);
  });
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = rx.begin_get();
    got = read_bytes(sys.runtime(1), Udp::payload_of(m));
    rx.end_get(m);
  });
  sys.engine().run();
  EXPECT_GT(sys.stack(0).ip.fragments_sent(), 1u);
  EXPECT_EQ(got, big);  // checksum still verifies across reassembly
  EXPECT_EQ(sys.stack(1).udp.dropped_bad_checksum(), 0u);
}

TEST(UdpTest, ManyDatagramsKeepOrderPerSender) {
  UdpFixture f;
  std::vector<std::string> got;
  for (int i = 0; i < 8; ++i) f.send("m" + std::to_string(i));
  f.sys.runtime(1).fork_system("recv", [&] {
    for (int i = 0; i < 8; ++i) {
      core::Message m = f.port_rx.begin_get();
      got.push_back(read_bytes(f.sys.runtime(1), Udp::payload_of(m)));
      f.port_rx.end_get(m);
    }
  });
  f.sys.engine().run();
  ASSERT_EQ(got.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));
}

}  // namespace
}  // namespace nectar::proto
