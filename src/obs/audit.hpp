#pragma once

// Conservation auditor: invariants checked at every telemetry tick.
//
// Components register named invariants as callbacks that return "" when the
// invariant holds and a human-readable detail string ("sent=10 delivered=8
// dropped=1 in_flight=0") when it does not. The auditor evaluates every
// tick-invariant at each check(t) and the final-only ones once at
// finalize(t), records the *first* violating interval per (invariant,
// component) pair — later recurrences only bump an occurrence count — and
// renders a structured "nectar-audit" report naming the offending component
// and interval. throw_if_failed() is the loud-failure path scenario runs
// use.
//
// The obs layer sits below hw/net in the link order, so the auditor knows
// nothing about links or hubs; net::Network::register_audit wires the
// substrate's conservation laws (frames tx == rx + dropped + in-flight and
// friends) into a generic Auditor. The one built-in check is registry-level:
// every histogram's bucket counts must sum to its count.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace nectar::obs {

class Auditor {
 public:
  /// Returns "" when the invariant holds, else the violation detail.
  using Check = std::function<std::string()>;

  struct Violation {
    sim::SimTime t = 0;  ///< first violating tick
    std::string invariant;
    std::string component;
    std::string detail;
    std::uint64_t occurrences = 0;  ///< ticks on which it was violated
  };

  /// `registry` (optional) enables the built-in histogram sum==count check.
  explicit Auditor(MetricsRegistry* registry = nullptr) : registry_(registry) {}

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Register an invariant checked at every tick (and at finalize).
  void add(std::string invariant, std::string component, Check fn);
  /// Register an invariant checked only at finalize() — for balances that
  /// legitimately float mid-run (e.g. lease balance vs a quiesced baseline).
  void add_final(std::string invariant, std::string component, Check fn);

  /// Evaluate every tick-invariant at simulated time `t`.
  void check(sim::SimTime t);
  /// Evaluate tick- and final-invariants once, at end of run.
  void finalize(sim::SimTime t);

  bool ok() const { return violations_.empty(); }
  std::size_t invariants() const { return checks_.size() + final_checks_.size(); }
  /// Individual invariant evaluations so far (ticks * invariants, roughly).
  std::uint64_t checks_run() const { return checks_run_; }
  std::uint64_t ticks() const { return ticks_; }
  const std::vector<Violation>& violations() const { return violations_; }

  /// Structured report ("nectar-audit"): every violation with its first
  /// interval, sorted by first occurrence.
  json::Value report_json() const;
  /// Throws std::runtime_error naming the first violation if !ok().
  void throw_if_failed() const;

 private:
  struct Entry {
    std::string invariant;
    std::string component;
    Check fn;
  };

  void run_checks(sim::SimTime t, std::vector<Entry>& entries);
  void histogram_builtin(sim::SimTime t);
  void record(sim::SimTime t, const std::string& invariant, const std::string& component,
              std::string detail);

  MetricsRegistry* registry_;
  std::vector<Entry> checks_;
  std::vector<Entry> final_checks_;
  std::uint64_t checks_run_ = 0;
  std::uint64_t ticks_ = 0;
  std::vector<Violation> violations_;  // insertion order == first occurrence
  std::map<std::pair<std::string, std::string>, std::size_t> index_;
};

}  // namespace nectar::obs
