// netperf: a throughput/latency measurement utility for the simulated
// Nectar, in the spirit of the tools the paper's evaluation used.
//
// Measures host-to-host streaming throughput through the protocol engine
// (§5.2) over TCP and RMP at a chosen message size, plus a 64-byte datagram
// round-trip — a one-command condensation of Table 1 and Figure 8.
//
//   $ ./netperf [message_bytes] [--trace out.json]
//
// With --trace, the datagram round-trip run also writes a Chrome trace-event
// timeline (host CPUs, CAB threads, VME, wire as separate tracks); open it in
// chrome://tracing or https://ui.perfetto.dev.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "host/node.hpp"
#include "obs/tracer.hpp"

using namespace nectar;

namespace {

struct Pair {
  net::NectarSystem sys{2, /*with_vme=*/true};
  host::HostNode h0{sys, 0};
  host::HostNode h1{sys, 1};
};

double tcp_stream(std::size_t size, int n) {
  Pair p;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * size;
  sim::SimTime t0 = -1, t1 = -1;
  p.h1.host.run_process("server", [&] {
    host::HostTcpSocket s(p.h1.nin, p.h1.sockets, p.sys.stack(1).tcp);
    if (!s.listen(80)) return;
    std::vector<std::uint8_t> buf(16 * 1024);
    std::uint64_t got = 0;
    while (got < total) {
      std::size_t r = s.recv(buf);
      if (r == 0) break;
      if (t0 < 0) t0 = p.sys.engine().now();
      got += r;
    }
    t1 = p.sys.engine().now();
  });
  p.sys.net().run_until(sim::msec(1));
  p.h0.host.run_process("client", [&] {
    p.h0.host.cpu().sleep_for(sim::usec(500));
    host::HostTcpSocket s(p.h0.nin, p.h0.sockets, p.sys.stack(0).tcp);
    if (!s.connect(5000, proto::ip_of_node(1), 80)) return;
    auto data = std::vector<std::uint8_t>(size, 0x42);
    proto::TcpConnection* c = p.sys.stack(0).tcp.find(s.conn_id());
    for (int i = 0; i < n; ++i) {
      while (c->unacked_bytes() >= 128 * 1024) p.h0.host.cpu().sleep_for(sim::usec(200));
      s.send(data);
    }
  });
  p.sys.net().run_until(sim::sec(120));
  if (t1 <= t0 || t0 < 0) return 0;
  return static_cast<double>(total) * 8.0 / (static_cast<double>(t1 - t0) / sim::kSecond) / 1e6;
}

double rmp_stream(std::size_t size, int n) {
  Pair p;
  core::MailboxAddr dst{};
  bool ready = false;
  sim::SimTime t0 = -1, t1 = -1;
  p.h1.host.run_process("recv", [&] {
    host::HostNectarPort port(p.h1.nin, p.h1.sockets, "sink");
    dst = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(size);
    for (int i = 0; i < n; ++i) {
      port.recv(buf);
      if (i == 0) t0 = p.sys.engine().now();
    }
    t1 = p.sys.engine().now();
  });
  p.sys.net().run_until(sim::msec(1));
  if (!ready) return 0;
  p.h0.host.run_process("send", [&] {
    host::HostNectarPort port(p.h0.nin, p.h0.sockets, "src");
    auto data = std::vector<std::uint8_t>(size, 0x5A);
    for (int i = 0; i < n; ++i) {
      while (p.sys.stack(0).rmp.queued_to(1) >= 8) p.h0.host.cpu().sleep_for(sim::usec(200));
      port.send_reliable(dst, data);
    }
  });
  p.sys.net().run_until(sim::sec(120));
  if (t1 <= t0 || t0 < 0) return 0;
  return static_cast<double>(n - 1) * size * 8.0 /
         (static_cast<double>(t1 - t0) / sim::kSecond) / 1e6;
}

double datagram_rtt_usec(const std::string& trace_path) {
  Pair p;
  if (!trace_path.empty()) p.sys.tracer().set_enabled(true);
  core::MailboxAddr svc{};
  bool ready = false;
  p.h1.host.run_process("echo", [&] {
    host::HostNectarPort port(p.h1.nin, p.h1.sockets, "echo");
    svc = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(64);
    for (int i = 0; i < 9; ++i) {
      std::size_t n = port.recv(buf);
      core::MailboxAddr back{static_cast<std::int32_t>(proto::get32n(buf, 0)),
                             proto::get32n(buf, 4)};
      port.send_datagram(back, std::span<const std::uint8_t>(buf).first(n));
    }
  });
  p.sys.net().run_until(sim::msec(1));
  if (!ready) return 0;
  sim::SimTime best = -1;
  p.h0.host.run_process("client", [&] {
    host::HostNectarPort port(p.h0.nin, p.h0.sockets, "cli");
    std::vector<std::uint8_t> msg(64, 0);
    proto::put32n(msg, 0, static_cast<std::uint32_t>(port.address().node));
    proto::put32n(msg, 4, port.address().index);
    std::vector<std::uint8_t> buf(64);
    for (int i = 0; i < 9; ++i) {
      sim::SimTime t0 = p.sys.engine().now();
      port.send_datagram(svc, msg);
      port.recv(buf);
      sim::SimTime rtt = p.sys.engine().now() - t0;
      if (best < 0 || rtt < best) best = rtt;
    }
  });
  p.sys.net().run_until(sim::sec(5));
  if (!trace_path.empty()) {
    if (!p.sys.tracer().write_chrome(trace_path)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", trace_path.c_str());
      std::exit(1);
    }
    std::printf("  (wrote %s: %zu events)\n", trace_path.c_str(),
                p.sys.tracer().events().size());
  }
  return sim::to_usec(best);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::size_t size = 8192;
  bool size_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (!size_set) {
      size = static_cast<std::size_t>(std::atoi(argv[i]));
      size_set = true;
    }
  }
  int n = size >= 4096 ? 150 : 400;

  std::printf("netperf: host-to-host over the Nectar protocol engine\n");
  std::printf("message size %zu bytes, %d messages per run (simulated clock)\n\n", size, n);
  std::printf("  TCP/IP stream   : %7.2f Mbit/s\n", tcp_stream(size, n));
  std::printf("  RMP stream      : %7.2f Mbit/s\n", rmp_stream(size, n));
  std::printf("  datagram RTT    : %7.1f us (64-byte, best of 9)\n", datagram_rtt_usec(trace_path));
  std::printf("\n(the paper's testbed: ~24-28 Mbit/s streams, 325 us round trip)\n");
  return 0;
}
