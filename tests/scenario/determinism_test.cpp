#include <gtest/gtest.h>

#include "scenario/engine.hpp"

namespace nectar::scenario {
namespace {

// The determinism contract (docs/SCENARIOS.md): a scenario is a pure
// function of (spec, seed). Same seed => byte-identical report and
// identical event count; different seed => decorrelated arrivals, sizes and
// fault timings.

ScenarioSpec mixed_spec(std::uint64_t seed) {
  ScenarioSpec spec = ScenarioSpec::from_config(Config::parse_string(R"(
[scenario]
name = det
duration = 300ms

[topology]
kind = star
nodes = 6

[workload]
name = udp
proto = udp
mode = open
users = 50
rate = 10
size_min = 64
size_max = 512

[workload]
name = rmp
proto = rmp
mode = closed
users = 2
think = 5ms
size = 128
stride = 2

[fault]
kind = link_drop
target = node1.link
at = 100ms
duration = 80ms
rate = 0.3
jitter = 40ms
)"));
  spec.seed = seed;
  return spec;
}

struct RunResult {
  std::string report;
  std::uint64_t events;
  sim::SimTime fault_at;
  std::uint64_t delivered;
};

RunResult run_once(std::uint64_t seed) {
  Scenario sc(mixed_spec(seed));
  sc.run();
  RunResult r;
  r.report = sc.report().to_json_string();
  r.events = sc.net().engine().events_processed();
  r.fault_at = sc.faults().records().at(0).applied_at;
  r.delivered = 0;
  for (const auto& w : sc.workloads()) r.delivered += w->delivered();
  return r;
}

TEST(ScenarioDeterminismTest, SameSeedSameRun) {
  RunResult a = run_once(11);
  RunResult b = run_once(11);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fault_at, b.fault_at);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.report, b.report) << "same (spec, seed) must be byte-identical";
}

TEST(ScenarioDeterminismTest, DifferentSeedDifferentRun) {
  RunResult a = run_once(11);
  RunResult c = run_once(12);
  EXPECT_NE(a.fault_at, c.fault_at) << "fault jitter must follow the master seed";
  EXPECT_NE(a.report, c.report);
}

TEST(ScenarioDeterminismTest, UnknownConfigKeysRejected) {
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[scenario]\nsede = 4\n")),
               std::runtime_error);
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[workload]\nprotocol = udp\n")),
               std::runtime_error);
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[fault]\nkind = link_drop\nwhen = 5ms\n")),
               std::runtime_error);
}

TEST(ScenarioDeterminismTest, SloReportCarriesTailPercentiles) {
  Scenario sc(mixed_spec(21));
  sc.run();
  obs::RunReport rep = sc.report();
  std::string json = rep.to_json_string();
  for (const char* key : {"udp.p50", "udp.p99", "udp.p999", "rmp.goodput", "rmp.fairness",
                          "drops.fault_attributed", "retransmits.rmp", "faults.injected"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing result " << key;
  }
  const auto& wl = *sc.workloads().at(0);
  EXPECT_GT(wl.delivered(), 0u);
  EXPECT_GT(wl.latency().count(), 0u);
  EXPECT_GT(wl.fairness(), 0.5);
}

}  // namespace
}  // namespace nectar::scenario
