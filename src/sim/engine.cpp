#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "sim/parallel.hpp"

namespace nectar::sim {

SimTime Engine::next_event_time() {
  while (!queue_.empty()) {
    const QueueEntry& e = queue_.top();
    if (live_slot(e.id) != nullptr) return e.time;
    queue_.pop();  // stale entry for a cancelled/recycled slot
  }
  return -1;
}

void Engine::send_cross(Engine& dst, SimTime t, Action fn, std::uint64_t key, std::uint64_t seq) {
  if (&dst == this) {
    schedule_at(t, std::move(fn));
    return;
  }
  if (coordinator_ == nullptr || coordinator_ != dst.coordinator_)
    throw std::logic_error("Engine::send_cross: engines do not share a ParallelEngine");
  ++cross_posts_;
  coordinator_->post(shard_id_, dst.shard_id_, t, key, seq, std::move(fn));
}

Engine::Slot* Engine::live_slot(EventId id) {
  std::size_t index = static_cast<std::size_t>(id >> 32);
  if (index == 0 || index > slots_.size()) return nullptr;
  Slot& s = slots_[index - 1];
  if (!s.armed || s.gen != static_cast<std::uint32_t>(id)) return nullptr;
  return &s;
}

void Engine::release_slot(std::size_t slot_index) {
  Slot& s = slots_[slot_index];
  s.armed = false;
  ++s.gen;  // invalidates the fired/cancelled handle and any queue entry
  free_.push_back(static_cast<std::uint32_t>(slot_index));
  --live_;
}

Engine::EventId Engine::schedule_at(SimTime t, Action fn) {
  if (t < now_) throw std::logic_error("Engine::schedule_at: time in the past");
  if (fn.heap_allocated()) ++heap_actions_;
  std::size_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
    ++pool_reuses_;
  } else {
    index = slots_.size();
    slots_.emplace_back();
  }
  Slot& s = slots_[index];
  s.armed = true;
  s.action = std::move(fn);
  EventId id = make_id(index, s.gen);
  queue_.push(QueueEntry{t, next_seq_++, id});
  ++live_;
  return id;
}

bool Engine::cancel(EventId id) {
  Slot* s = live_slot(id);
  if (s == nullptr) return false;
  s->action.reset();
  release_slot(static_cast<std::size_t>(s - slots_.data()));
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    QueueEntry e = queue_.top();
    queue_.pop();
    Slot* s = live_slot(e.id);
    if (s == nullptr) continue;  // cancelled
    // Move the action out before running it: the callback may schedule new
    // events, which can recycle this slot or grow the slab.
    Action fn = std::move(s->action);
    release_slot(static_cast<std::size_t>(s - slots_.data()));
    assert(e.time >= now_);
    now_ = e.time;
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

bool Engine::run_until(SimTime t) {
  while (!queue_.empty()) {
    // Skip over cancelled entries without advancing time.
    QueueEntry e = queue_.top();
    if (live_slot(e.id) == nullptr) {
      queue_.pop();
      continue;
    }
    if (e.time > t) {
      now_ = t;
      return true;
    }
    step();
  }
  now_ = std::max(now_, t);
  return false;
}

bool Engine::run_while(const std::function<bool()>& pending) {
  while (pending()) {
    if (!step()) return false;
  }
  return true;
}

void Engine::register_metrics(obs::Registration& reg, int node) const {
  reg.probe(node, "sim.engine", "events_processed",
            [this] { return static_cast<std::int64_t>(events_processed()); });
  reg.probe(node, "sim.engine", "pending_events",
            [this] { return static_cast<std::int64_t>(pending_events()); });
  reg.probe(node, "sim.engine", "pool_slots",
            [this] { return static_cast<std::int64_t>(pool_slots()); });
  reg.probe(node, "sim.engine", "pool_free",
            [this] { return static_cast<std::int64_t>(pool_free()); });
  reg.probe(node, "sim.engine", "pool_reuses",
            [this] { return static_cast<std::int64_t>(pool_reuses()); });
  reg.probe(node, "sim.engine", "heap_actions",
            [this] { return static_cast<std::int64_t>(heap_actions()); });
}

}  // namespace nectar::sim
