#include "scenario/sessions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "proto/ip.hpp"
#include "sim/random.hpp"

namespace nectar::scenario {

namespace {

// Stamp codec, same little-endian layout as the workload header so report
// readers only learn one convention: [u32 global channel][u32 seq][u64 t_send].
void pack32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void pack64(std::uint8_t* p, std::uint64_t v) {
  pack32(p, static_cast<std::uint32_t>(v));
  pack32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t unpack32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t unpack64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(unpack32(p)) |
         (static_cast<std::uint64_t>(unpack32(p + 4)) << 32);
}

// A driver fiber may first get the CPU after its absolute start time has
// already passed (startup charges advance the clock); sleeping into the past
// throws, so absolute waits clamp to "now or later".
void sleep_until_at_least(core::CabRuntime& rt, sim::SimTime t) {
  if (t > rt.engine().now()) rt.cpu().sleep_until(t);
}

sim::SimTime exp_draw(sim::Random& rng, double mean_ns) {
  double t = -std::log(1.0 - rng.next_double()) * mean_ns;
  if (t < 0.0) t = 0.0;
  if (t > 9.0e15) t = 9.0e15;
  return static_cast<sim::SimTime>(t);
}

/// The TCP trunk rendezvous: every node listens here, its upstream peer
/// connects with local ports kTcpPort+1+k (one per trunk).
constexpr std::uint16_t kTcpPort = 7000;

}  // namespace

void SessionsSpec::validate() const {
  auto bad = [](const std::string& why) { throw std::runtime_error("[sessions] " + why); };
  if (trunk_proto != "rmp" && trunk_proto != "tcp") {
    bad("trunk_proto must be rmp or tcp, got '" + trunk_proto + "'");
  }
  if (trunks < 1) bad("trunks must be >= 1");
  if (channels < 1) bad("channels must be >= 1");
  if (stride < 1) bad("stride must be >= 1");
  if (size < 16) bad("size must be >= 16 (the measurement stamp)");
  if (size > 60000) bad("size must fit a 16-bit frame length");
  if (size + static_cast<std::int64_t>(session::FrameHeader::kSize) > max_batch) {
    bad("size + frame header must fit max_batch");
  }
  if (classes < 1 || classes > session::SessionManager::kClasses) {
    bad("classes must be in [1, " + std::to_string(session::SessionManager::kClasses) + "]");
  }
  if (weight_spread < 1 || weight_spread > 255) bad("weight_spread must be in [1, 255]");
  if (initial_credit < 1) bad("initial_credit must be >= 1");
  if (send_window < 1) bad("send_window must be >= 1");
  if (max_channels < 1) bad("max_channels must be >= 1");
  if (rmp_queue_cap < 1) bad("rmp_queue_cap must be >= 1");
  if (aggregation < 0) bad("aggregation must be >= 0");
  if (rate < 0.0) bad("rate must be >= 0");
  if (churn_rate < 0.0) bad("churn_rate must be >= 0");
  if (fail_timeout <= 0) bad("fail_timeout must be > 0");
  if (stall_channels < 0) bad("stall_channels must be >= 0");
  if (probe_channels < 0 || probe_channels > channels) {
    bad("probe_channels must be in [0, channels]");
  }
}

SessionDriver::SessionDriver(net::Network& net, std::vector<net::NodeStack*> stacks,
                             const SessionsSpec& spec, std::uint64_t master_seed)
    : net_(net),
      stacks_(std::move(stacks)),
      spec_(spec),
      master_seed_(master_seed),
      node_count_(net.cab_count()) {
  spec_.validate();
  if (node_count_ < 2) throw std::runtime_error("[sessions] needs at least 2 nodes");
  if (dst_of(0) == 0) {
    throw std::runtime_error("[sessions] stride " + std::to_string(spec_.stride) +
                             " maps nodes onto themselves with " + std::to_string(node_count_) +
                             " nodes");
  }

  session::SessionConfig cfg;
  cfg.initial_credit = static_cast<std::uint32_t>(spec_.initial_credit);
  cfg.credit_refresh = static_cast<std::uint32_t>(spec_.credit_refresh);
  cfg.send_window = static_cast<std::uint32_t>(spec_.send_window);
  cfg.max_batch = static_cast<std::uint32_t>(spec_.max_batch);
  cfg.max_channels = static_cast<std::uint32_t>(spec_.max_channels);
  cfg.rmp_queue_cap = static_cast<std::size_t>(spec_.rmp_queue_cap);
  cfg.aggregation = spec_.aggregation;
  cfg.fail_timeout = spec_.fail_timeout;

  stats_.assign(static_cast<std::size_t>(node_count_) * static_cast<std::size_t>(spec_.channels),
                ChannelStat{});
  probes_.assign(
      static_cast<std::size_t>(node_count_) * static_cast<std::size_t>(spec_.probe_channels),
      obs::LatencyHistogram{});

  nodes_.reserve(static_cast<std::size_t>(node_count_));
  for (int i = 0; i < node_count_; ++i) {
    auto n = std::make_unique<NodeState>();
    n->mgr = std::make_unique<session::SessionManager>(
        net_.runtime(i), i, &stacks_[static_cast<std::size_t>(i)]->rmp,
        &stacks_[static_cast<std::size_t>(i)]->tcp, cfg);
    n->chans.assign(static_cast<std::size_t>(spec_.channels), Channel{});
    nodes_.push_back(std::move(n));
  }

  const bool tcp = spec_.trunk_proto == "tcp";
  if (!tcp) build_rmp_trunks();
  for (int i = 0; i < node_count_; ++i) install_callbacks(i);

  for (int i = 0; i < node_count_; ++i) {
    if (tcp) {
      // The peer's opener dials in; this node's accept thread attaches the
      // inbound trunks in connect order (serial dials => deterministic).
      net_.runtime(i).fork_system("sess-accept", [this, i] {
        NodeState& n = ns(i);
        proto::Tcp& t = stacks_[static_cast<std::size_t>(i)]->tcp;
        proto::TcpListener* l = t.open_listener(kTcpPort);
        int src = (i - static_cast<int>(spec_.stride) % node_count_ + node_count_) % node_count_;
        for (std::int64_t k = 0; k < spec_.trunks; ++k) {
          proto::TcpConnection* c = t.accept(l);
          n.in_trunks.push_back(n.mgr->add_tcp_trunk(c, src));
        }
      });
    }
    net_.runtime(i).fork_app("sess-open", [this, i, tcp] {
      if (tcp) build_node_tcp_trunks(i);
      sleep_until_at_least(net_.runtime(i), spec_.start);
      open_all(i);
    });
    if (spec_.rate > 0.0) {
      net_.runtime(i).fork_app("sess-gen", [this, i] { generator_loop(i); });
    }
    if (spec_.churn_rate > 0.0) {
      net_.runtime(i).fork_app("sess-churn", [this, i] { churn_loop(i); });
    }
    if (spec_.stall_at > 0 && spec_.stall_channels > 0) {
      net_.runtime(i).fork_system("sess-stall", [this, i] { stall_loop(i); });
    }
  }
}

void SessionDriver::build_rmp_trunks() {
  for (int i = 0; i < node_count_; ++i) {
    int dst = dst_of(i);
    for (std::int64_t k = 0; k < spec_.trunks; ++k) {
      auto [ti, tj] = session::SessionManager::connect_rmp_pair(*ns(i).mgr, *ns(dst).mgr);
      ns(i).out_trunks.push_back(ti);
      ns(dst).in_trunks.push_back(tj);
    }
  }
}

void SessionDriver::build_node_tcp_trunks(int node) {
  NodeState& n = ns(node);
  int dst = dst_of(node);
  proto::Tcp& t = stacks_[static_cast<std::size_t>(node)]->tcp;
  for (std::int64_t k = 0; k < spec_.trunks; ++k) {
    proto::TcpConnection* c =
        t.connect(static_cast<std::uint16_t>(kTcpPort + 1 + k), proto::ip_of_node(dst), kTcpPort);
    t.wait_established(c);
    n.out_trunks.push_back(n.mgr->add_tcp_trunk(c, dst));
  }
}

void SessionDriver::install_callbacks(int node) {
  session::SessionManager& mgr = *ns(node).mgr;
  mgr.on_open_result = [this, node](session::SessionManager::ChannelHandle h, bool accepted) {
    NodeState& n = ns(node);
    if (h >= n.chan_of_handle.size()) return;
    std::uint32_t c = n.chan_of_handle[h];
    Channel& ch = n.chans[c];
    if (ch.handle != h) return;  // superseded by churn reopen
    if (accepted) {
      n.open_lat.observe(runtime(node).engine().now() - ch.open_sent);
    } else {
      ch.handle = session::SessionManager::kNoHandle;
    }
  };
  mgr.on_channel_failed = [this, node](session::SessionManager::ChannelHandle h,
                                       const std::string&) {
    NodeState& n = ns(node);
    if (h >= n.chan_of_handle.size()) return;
    std::uint32_t c = n.chan_of_handle[h];
    if (n.chans[c].handle != h) return;
    n.chans[c].handle = session::SessionManager::kNoHandle;
    ++stats_[global_channel(node, c)].fails;
  };
  mgr.on_deliver = [this, node](int, std::uint16_t, std::uint8_t,
                                std::span<const std::uint8_t> payload) {
    if (payload.size() < kStampBytes) return;
    std::uint32_t gid = unpack32(payload.data());
    if (gid >= stats_.size()) return;
    auto sent_ns = static_cast<sim::SimTime>(unpack64(payload.data() + 8));
    sim::SimTime now = runtime(node).engine().now();
    if (sent_ns <= 0 || sent_ns > now) return;
    ChannelStat& st = stats_[gid];
    ++st.delivered;
    auto lat = static_cast<std::uint64_t>(now - sent_ns);
    st.lat_sum += lat;
    st.lat_max = std::max(st.lat_max, lat);
    ns(node).data_lat.observe(now - sent_ns);
    if (spec_.probe_channels > 0) {
      auto sender = gid / static_cast<std::uint32_t>(spec_.channels);
      auto c = gid % static_cast<std::uint32_t>(spec_.channels);
      if (c < static_cast<std::uint32_t>(spec_.probe_channels)) {
        probes_[sender * static_cast<std::uint32_t>(spec_.probe_channels) + c].observe(now -
                                                                                       sent_ns);
      }
    }
  };
}

void SessionDriver::open_all(int node) {
  for (std::int64_t c = 0; c < spec_.channels; ++c) {
    open_one(node, static_cast<std::uint32_t>(c));
  }
}

void SessionDriver::open_one(int node, std::uint32_t c) {
  NodeState& n = ns(node);
  auto pri = static_cast<std::uint8_t>(c % static_cast<std::uint32_t>(spec_.classes));
  auto weight =
      static_cast<std::uint8_t>(1 + c % static_cast<std::uint32_t>(spec_.weight_spread));
  int trunk = n.out_trunks[c % static_cast<std::uint32_t>(spec_.trunks)];
  Channel& ch = n.chans[c];
  ch.open_sent = runtime(node).engine().now();
  ch.handle = n.mgr->open_channel(trunk, pri, weight);
  ++n.opens_initiated;
  if (ch.handle == session::SessionManager::kNoHandle) return;
  if (ch.handle >= n.chan_of_handle.size()) n.chan_of_handle.resize(ch.handle + 1, 0);
  n.chan_of_handle[ch.handle] = c;
  ++stats_[global_channel(node, c)].opens;
}

void SessionDriver::generator_loop(int node) {
  core::CabRuntime& rt = runtime(node);
  sim::Random rng(sim::derive_seed(master_seed_, "sess/gen/" + std::to_string(node)));
  sleep_until_at_least(rt, spec_.start + spec_.warmup);
  const double mean_ns = 1.0e9 / spec_.rate;
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(spec_.size), 0);
  NodeState& n = ns(node);
  std::uint32_t cursor = 0;
  while (true) {
    rt.cpu().sleep_for(exp_draw(rng, mean_ns));
    std::uint32_t c = cursor;
    cursor = (cursor + 1) % static_cast<std::uint32_t>(spec_.channels);
    ChannelStat& st = stats_[global_channel(node, c)];
    Channel& ch = n.chans[c];
    if (ch.handle == session::SessionManager::kNoHandle) {
      ++st.shed;
      continue;
    }
    pack32(payload.data(), global_channel(node, c));
    pack32(payload.data() + 4, static_cast<std::uint32_t>(st.sent));
    pack64(payload.data() + 8, static_cast<std::uint64_t>(rt.engine().now()));
    switch (n.mgr->try_send(ch.handle, payload)) {
      case session::SendResult::Ok:
        ++st.sent;
        break;
      case session::SendResult::Backpressure:
      case session::SendResult::NotOpen:
        ++st.shed;  // admission/window stall: nothing was taken, not a loss
        break;
      case session::SendResult::Failed:
        ++st.shed;
        ch.handle = session::SessionManager::kNoHandle;
        break;
    }
  }
}

void SessionDriver::churn_loop(int node) {
  core::CabRuntime& rt = runtime(node);
  sim::Random rng(sim::derive_seed(master_seed_, "sess/churn/" + std::to_string(node)));
  sleep_until_at_least(rt, std::max(spec_.churn_start, spec_.start + spec_.warmup));
  const double mean_ns = 1.0e9 / spec_.churn_rate;
  const sim::SimTime end = spec_.churn_duration > 0
                               ? spec_.churn_start + spec_.churn_duration
                               : std::numeric_limits<sim::SimTime>::max();
  NodeState& n = ns(node);
  while (rt.engine().now() < end) {
    rt.cpu().sleep_for(exp_draw(rng, mean_ns));
    auto c = static_cast<std::uint32_t>(
        rng.next_below(static_cast<std::uint64_t>(spec_.channels)));
    Channel& ch = n.chans[c];
    if (ch.handle != session::SessionManager::kNoHandle &&
        n.mgr->state(ch.handle) == session::ChannelState::Open) {
      n.mgr->close_channel(ch.handle);
    }
    open_one(node, c);  // immediate reopen: ids recycle under live traffic
    ++n.churn_cycles;
  }
}

void SessionDriver::stall_loop(int node) {
  core::CabRuntime& rt = runtime(node);
  sleep_until_at_least(rt, spec_.stall_at);
  NodeState& n = ns(node);
  if (n.in_trunks.empty()) return;
  for (std::int64_t id = 0; id < spec_.stall_channels; ++id) {
    n.mgr->freeze_inbound_credit(n.in_trunks[0], static_cast<std::uint16_t>(id), true);
  }
  rt.cpu().sleep_for(spec_.stall_duration);
  for (std::int64_t id = 0; id < spec_.stall_channels; ++id) {
    n.mgr->freeze_inbound_credit(n.in_trunks[0], static_cast<std::uint16_t>(id), false);
  }
}

bool SessionDriver::stalled_channel(std::int64_t c) const {
  // Opens are issued in channel order, so channel c rides trunk c % trunks
  // as wire id c / trunks; the stall freezes wire ids [0, stall_channels) of
  // trunk 0. Only meaningful without churn (fairness also requires opens==1).
  if (spec_.stall_at <= 0 || spec_.stall_channels <= 0) return false;
  return c % spec_.trunks == 0 && c / spec_.trunks < spec_.stall_channels;
}

std::uint64_t SessionDriver::data_sent() const {
  std::uint64_t v = 0;
  for (const ChannelStat& s : stats_) v += s.sent;
  return v;
}

std::uint64_t SessionDriver::data_delivered() const {
  std::uint64_t v = 0;
  for (const ChannelStat& s : stats_) v += s.delivered;
  return v;
}

std::uint64_t SessionDriver::data_shed() const {
  std::uint64_t v = 0;
  for (const ChannelStat& s : stats_) v += s.shed;
  return v;
}

std::uint64_t SessionDriver::churn_cycles() const {
  std::uint64_t v = 0;
  for (const auto& n : nodes_) v += n->churn_cycles;
  return v;
}

double SessionDriver::fairness() const {
  // Jain's index over per-channel delivered counts of clean channels:
  // opened exactly once, never failed, outside the scripted stall set.
  double sum = 0.0, sumsq = 0.0;
  std::uint64_t n = 0;
  for (int node = 0; node < node_count_; ++node) {
    for (std::int64_t c = 0; c < spec_.channels; ++c) {
      const ChannelStat& s = stats_[global_channel(node, static_cast<std::uint32_t>(c))];
      if (s.opens != 1 || s.fails != 0 || stalled_channel(c)) continue;
      auto x = static_cast<double>(s.delivered);
      sum += x;
      sumsq += x * x;
      ++n;
    }
  }
  if (n == 0 || sumsq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sumsq);
}

void SessionDriver::report_into(obs::RunReport& rep) {
  std::uint64_t opened = 0, refused = 0, closed = 0, failed = 0, frames_tx = 0, frames_rx = 0;
  std::uint64_t stalls = 0, gen_drops = 0, proto_errs = 0, trunk_fail = 0;
  std::uint64_t tx_msgs = 0, tx_frames = 0, tx_fast = 0;
  obs::LatencyHistogram open_lat, data_lat;
  std::uint64_t opens_initiated = 0;
  for (const auto& np : nodes_) {
    session::SessionManager& m = *np->mgr;
    opened += m.channels_opened();
    refused += m.channels_refused();
    closed += m.channels_closed();
    failed += m.channels_failed();
    frames_tx += m.frames_sent();
    frames_rx += m.frames_delivered();
    stalls += m.credit_stalls();
    gen_drops += m.gen_mismatch_drops();
    proto_errs += m.proto_errors();
    trunk_fail += m.trunk_failures();
    for (int t = 0; t < m.trunk_count(); ++t) {
      tx_msgs += m.trunk_tx_msgs(t);
      tx_frames += m.trunk_tx_frames(t);
      tx_fast += m.trunk_tx_fast(t);
    }
    open_lat.merge(np->open_lat);
    data_lat.merge(np->data_lat);
    opens_initiated += np->opens_initiated;
  }
  rep.add("session.channels_per_node", static_cast<double>(spec_.channels), "count");
  rep.add("session.trunks_per_node", static_cast<double>(spec_.trunks), "count");
  rep.add("session.opens_initiated", static_cast<double>(opens_initiated), "count");
  rep.add("session.opened", static_cast<double>(opened), "count");
  rep.add("session.refused", static_cast<double>(refused), "count");
  rep.add("session.closed", static_cast<double>(closed), "count");
  rep.add("session.failed", static_cast<double>(failed), "count");
  rep.add("session.trunk_failures", static_cast<double>(trunk_fail), "count");
  rep.add("session.credit_stalls", static_cast<double>(stalls), "count");
  rep.add("session.gen_mismatch_drops", static_cast<double>(gen_drops), "count");
  rep.add("session.proto_errors", static_cast<double>(proto_errs), "count");
  rep.add("session.frames.sent", static_cast<double>(frames_tx), "count");
  rep.add("session.frames.delivered", static_cast<double>(frames_rx), "count");
  rep.add("session.trunk.tx_msgs", static_cast<double>(tx_msgs), "count");
  rep.add("session.trunk.tx_frames", static_cast<double>(tx_frames), "count");
  rep.add("session.trunk.tx_fast", static_cast<double>(tx_fast), "count");
  rep.add("session.trunk.frames_per_msg",
          tx_msgs != 0 ? static_cast<double>(tx_frames) / static_cast<double>(tx_msgs) : 0.0,
          "ratio");
  rep.add("session.open.count", static_cast<double>(open_lat.count()), "count");
  rep.add("session.open.mean", open_lat.mean() / sim::kMicrosecond, "us");
  rep.add("session.open.p50", open_lat.p50() / sim::kMicrosecond, "us");
  rep.add("session.open.p99", open_lat.p99() / sim::kMicrosecond, "us");
  rep.add("session.data.sent", static_cast<double>(data_sent()), "count");
  rep.add("session.data.delivered", static_cast<double>(data_delivered()), "count");
  rep.add("session.data.shed", static_cast<double>(data_shed()), "count");
  rep.add("session.data.count", static_cast<double>(data_lat.count()), "count");
  rep.add("session.data.mean", data_lat.mean() / sim::kMicrosecond, "us");
  rep.add("session.data.p50", data_lat.p50() / sim::kMicrosecond, "us");
  rep.add("session.data.p90", data_lat.p90() / sim::kMicrosecond, "us");
  rep.add("session.data.p99", data_lat.p99() / sim::kMicrosecond, "us");
  rep.add("session.data.p999", data_lat.p999() / sim::kMicrosecond, "us");
  rep.add("session.fairness", fairness(), "jain");
  rep.add("session.churn.cycles", static_cast<double>(churn_cycles()), "count");
  // Per-probe-channel SLO rows (channel index c on every node, merged):
  // exact per-channel percentiles for the channels under test.
  for (std::int64_t c = 0; c < spec_.probe_channels; ++c) {
    obs::LatencyHistogram h;
    for (int node = 0; node < node_count_; ++node) {
      h.merge(probes_[static_cast<std::size_t>(node) * static_cast<std::size_t>(
                                                           spec_.probe_channels) +
                      static_cast<std::size_t>(c)]);
    }
    std::string p = "session.probe" + std::to_string(c) + ".";
    rep.add(p + "count", static_cast<double>(h.count()), "count");
    rep.add(p + "p50", h.p50() / sim::kMicrosecond, "us");
    rep.add(p + "p99", h.p99() / sim::kMicrosecond, "us");
  }
}

}  // namespace nectar::scenario
