#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "host/driver.hpp"
#include "nproto/datagram.hpp"
#include "nproto/reqresp.hpp"
#include "nproto/rmp.hpp"

namespace nectar::coll {
class HostCollective;
enum class ReduceOp : std::uint8_t;
}

namespace nectar::nectarine {

// RPC-based mailbox operation opcodes (paper §3.3: "Mailbox operations from
// the host were initially implemented using the simple host-to-CAB RPC
// mechanism"). The shared-memory implementation coexists with it and either
// can be selected per mailbox — the paper measured the shared-memory path at
// about twice the speed (reproduced by bench_ablation_mailbox).
constexpr std::uint16_t kOpBeginPut = host::kOpRpcBase + 0;  // param: mb<<16|size
constexpr std::uint16_t kOpEndPut = host::kOpRpcBase + 1;    // param: data addr
constexpr std::uint16_t kOpBeginGet = host::kOpRpcBase + 2;  // param: mb index
constexpr std::uint16_t kOpEndGet = host::kOpRpcBase + 3;    // param: data addr
constexpr std::uint16_t kOpMsgLen = host::kOpRpcBase + 4;    // param: data addr

/// CAB-side Nectarine services: the RPC mailbox-operation handlers and the
/// remote task registry ("Nectarine ... allows applications to create
/// mailboxes and tasks on other hosts or CABs", §3.5).
class CabServices {
 public:
  /// Request type for the nectarine service mailbox (remote task start).
  static constexpr std::uint32_t kStartTask = 1;

  CabServices(core::CabRuntime& rt, nproto::ReqResp& reqresp);

  CabServices(const CabServices&) = delete;
  CabServices& operator=(const CabServices&) = delete;

  core::CabRuntime& runtime() { return rt_; }

  /// Register a task body that remote nodes may start by name. The task
  /// runs as an application thread (§3.1) with a caller-supplied argument.
  void register_task(const std::string& name, std::function<void(std::uint32_t)> body);

  /// Network-wide address of the service mailbox remote nodes call into.
  core::MailboxAddr service_address() const { return service_.address(); }

  /// Mailbox through which the local *host* asks this CAB to perform remote
  /// operations on its behalf (hosts cannot execute CAB code; they post
  /// requests — the same pattern as the TCP send-request mailbox, §4.2).
  core::Mailbox& host_call_mailbox() { return host_call_; }

  std::uint64_t tasks_started() const { return tasks_started_; }
  std::uint64_t rpc_mailbox_ops() const { return rpc_ops_; }

 private:
  void install_rpc_handlers();
  void service_loop();
  void host_call_loop();

  core::CabRuntime& rt_;
  nproto::ReqResp& reqresp_;
  core::Mailbox& service_;
  core::Mailbox& host_call_;
  std::map<std::string, std::function<void(std::uint32_t)>> tasks_;
  /// Outstanding host-initiated messages, reconstructable by data address.
  std::map<hw::CabAddr, core::Message> host_messages_;
  std::uint64_t tasks_started_ = 0;
  std::uint64_t rpc_ops_ = 0;
};

/// Host-side Nectarine (§3.5): "implemented as a library linked into an
/// application's address space ... provides applications with a procedural
/// interface to the Nectar communication protocols and direct access to
/// mailboxes in CAB memory."
class HostNectarine {
 public:
  explicit HostNectarine(host::CabDriver& driver);

  HostNectarine(const HostNectarine&) = delete;
  HostNectarine& operator=(const HostNectarine&) = delete;

  host::CabDriver& driver() { return driver_; }
  core::CabRuntime& cab() { return driver_.cab(); }

  /// A host-visible mailbox: the CAB mailbox plus the host condition
  /// variable used to wait for its messages.
  struct HostMailbox {
    core::Mailbox* mb = nullptr;
    host::CabDriver::HostCondId cond = 0;
    std::uint32_t last_poll = 0;
  };

  /// Create a CAB mailbox set up for host access (notify hook attached).
  HostMailbox create_mailbox(const std::string& name);
  /// Attach to an existing CAB mailbox for host-side reading.
  HostMailbox attach(core::Mailbox& mb);

  // --- shared-memory mailbox operations (§3.3) ------------------------------

  core::Message begin_put(HostMailbox& h, std::uint32_t size);
  void end_put(HostMailbox& h, core::Message m);
  /// Wait by polling (no system call; the Fig. 6 receive path).
  core::Message begin_get_poll(HostMailbox& h);
  /// Wait by blocking in the driver (server processes, §3.2).
  core::Message begin_get_block(HostMailbox& h);
  void end_get(HostMailbox& h, core::Message m);

  // --- RPC-based mailbox operations (§3.3, the slower coexisting variant) ----

  core::Message begin_put_rpc(HostMailbox& h, std::uint32_t size);
  void end_put_rpc(HostMailbox& h, core::Message m);
  core::Message begin_get_rpc(HostMailbox& h);  // polls via repeated RPC
  void end_get_rpc(HostMailbox& h, core::Message m);

  // --- message data access (bytes live in CAB memory) ------------------------

  void write_message(const core::Message& m, std::span<const std::uint8_t> data);
  void read_message(const core::Message& m, std::span<std::uint8_t> out);

  // --- transport shortcuts -----------------------------------------------------

  /// Issue a request-response call to a remote service on behalf of this
  /// host: the request goes through the local CAB's host-call mailbox; a CAB
  /// thread performs the call and reports completion through a sync.
  /// Returns 0 = no response, 1 = service replied "ok", 2 = other response.
  std::uint32_t host_call(CabServices& local, core::MailboxAddr remote_service,
                          std::span<const std::uint8_t> request);

  /// Start a named task on a remote CAB. Returns true on success.
  bool start_remote_task(CabServices& local, core::MailboxAddr remote_service,
                         const std::string& task, std::uint32_t arg);

  // --- collectives (src/coll) -------------------------------------------------

  /// Attach this host's collective baseline. The coll_* calls forward to it
  /// (mirroring CabNectarine, §3.5 interface symmetry); definitions live in
  /// src/coll so Nectarine carries no dependency on the collective code.
  void attach_collectives(coll::HostCollective* hc) { coll_ = hc; }
  coll::HostCollective* collectives() { return coll_; }

  bool coll_barrier(std::uint16_t group);
  bool coll_bcast(std::uint16_t group, std::span<std::uint8_t> data);
  bool coll_reduce(std::uint16_t group, coll::ReduceOp op, std::uint64_t contribution,
                   std::uint64_t* result);

 private:
  host::CabDriver& driver_;
  coll::HostCollective* coll_ = nullptr;
};

}  // namespace nectar::nectarine
