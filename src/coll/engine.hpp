#pragma once

// CAB-resident collective engine: barrier, broadcast, and reduce running
// entirely on the communication processor (the paper's thesis — protocol
// processing belongs on the NIC — applied to collectives, after Yu et al.'s
// NIC-based collective protocols in PAPERS.md).
//
// The engine is a datalink client (PacketType::Coll) in the nproto mold:
// every protocol action happens at CAB interrupt level — arrivals are
// combined, partials are reduced, and releases are forwarded without waking
// a thread or crossing the VME bus. The calling CAB thread blocks only for
// its own entry and release. Headers compose into proto::HeaderBuf headroom
// and operands ride in the header itself, so the common case (barrier,
// reduce) is allocation-free end to end.
//
// Reliability: collective messages are idempotent (duplicates are absorbed
// by per-seq bitmasks), senders retransmit their outstanding messages on a
// per-op cadence, and a node that has already completed sequence S answers a
// straggler's stale message for S directly (unicast Release / ReduceResult /
// BcastAck re-send). A member that stays silent past the group timeout —
// e.g. a cab_crash fault — fails the op with a loud error naming the group,
// epoch, op, sequence, and the missing ranks, never a hang.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "coll/group.hpp"
#include "coll/wire.hpp"
#include "core/mailbox.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "proto/datalink.hpp"

namespace nectar::coll {

class CollectiveEngine : public proto::DatalinkClient {
 public:
  explicit CollectiveEngine(proto::Datalink& dl);

  CollectiveEngine(const CollectiveEngine&) = delete;
  CollectiveEngine& operator=(const CollectiveEngine&) = delete;

  core::CabRuntime& runtime() { return dl_.runtime(); }
  int node_id() const { return dl_.node_id(); }

  // --- group management ------------------------------------------------------

  /// Install a group this node is a member of. Every member installs the
  /// same spec (members, root, algorithm); collective calls must then be
  /// issued in the same order on every member.
  void join_group(GroupSpec spec);
  bool has_group(std::uint16_t id) const { return groups_.count(id) > 0; }
  /// After a failure, re-arm the group under a new (strictly larger) epoch:
  /// clears the failed state and all buffered per-seq state. Messages
  /// stamped with the old epoch are counted and dropped on arrival.
  void reform(std::uint16_t id, std::uint16_t new_epoch);

  // --- collective calls (blocking, CAB thread context) ----------------------

  /// Returns false (with last_error() set) if the group failed or times out.
  bool barrier(std::uint16_t group);
  /// Root: transmit `data` to every member. Member: receive into `data`
  /// (filled up to min(data.size(), root's length)). Completes at the root
  /// only once every member has confirmed delivery.
  bool bcast(std::uint16_t group, std::span<std::uint8_t> data);
  /// Combine every member's `contribution` under `op` (interior tree nodes
  /// combine on-CAB as partials flow rootward); every member receives the
  /// final value in `*result`.
  bool reduce(std::uint16_t group, ReduceOp op, std::uint64_t contribution,
              std::uint64_t* result);

  const std::string& last_error() const { return last_error_; }

  // --- stats / observability ------------------------------------------------

  std::uint64_t msgs_sent() const { return msgs_sent_; }
  std::uint64_t msgs_received() const { return msgs_received_; }
  std::uint64_t ops_completed() const { return ops_completed_; }
  std::uint64_t ops_failed() const { return ops_failed_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t stale_drops() const { return stale_drops_; }

  /// Per-op completion latency (entry to release) observed on this node.
  obs::LatencyHistogram& barrier_latency() { return barrier_lat_; }
  obs::LatencyHistogram& bcast_latency() { return bcast_lat_; }
  obs::LatencyHistogram& reduce_latency() { return reduce_lat_; }

  // --- DatalinkClient --------------------------------------------------------

  std::size_t header_bytes() const override { return CollHeader::kSize; }
  core::Mailbox& input_mailbox() override { return input_; }
  void end_of_data(core::Message m, std::uint8_t src_node) override;

 private:
  /// Which collective the local thread is blocked in.
  enum class OpKind : std::uint8_t { None, Barrier, Bcast, Reduce };

  /// Inbound state buffered per sequence number. Peers may run one
  /// collective ahead (their release arrived before ours), so state for
  /// seq and seq+1 coexists; entries below the current seq are pruned when
  /// an op completes.
  struct SeqState {
    std::vector<std::uint64_t> rank_mask;  ///< tree arrivals / reduce-ups / bcast acks
    std::uint64_t rounds = 0;              ///< dissemination: bit r = round r received
    std::uint64_t partial = 0;             ///< combined reduce partial from children
    bool partial_valid = false;
    std::uint8_t rop = 0;                  ///< ReduceOp the partial was combined under
    bool released = false;                 ///< Release / ReduceResult seen
    std::uint64_t result = 0;              ///< value carried by ReduceResult
    std::vector<std::uint8_t> bcast_data;  ///< BcastData payload (host-side copy)
    bool bcast_valid = false;
  };

  /// The local thread's outstanding op.
  struct OpWait {
    OpKind kind = OpKind::None;
    core::Thread* waiter = nullptr;
    bool done = false;
    bool ok = false;
    bool sent_up = false;  ///< tree: Arrive/ReduceUp already forwarded to parent
    ReduceOp rop = ReduceOp::Sum;
    std::uint64_t contribution = 0;
    std::uint64_t result = 0;
    std::span<std::uint8_t> user_data;  ///< bcast caller buffer
    int round = 0;                      ///< dissemination round in progress
    sim::SimTime started = 0;
    core::Cpu::TimerId timeout_timer = 0;
    core::Cpu::TimerId retransmit_timer = 0;
  };

  struct Group {
    GroupSpec spec;
    int my_rank = -1;
    std::uint32_t seq = 1;  ///< sequence of the op in progress / up next
    bool failed = false;
    std::string error;  ///< why the group failed (also mirrored in last_error_)
    OpWait op;
    std::map<std::uint32_t, SeqState> pending;
    // Completed-op memory, to answer a straggler's stale message for the
    // last finished sequence without keeping full history.
    std::uint32_t last_done_seq = 0;
    OpKind last_kind = OpKind::None;
    std::uint64_t last_value = 0;
  };

  // rank-bitmask helpers over SeqState::rank_mask
  static void mask_set(std::vector<std::uint64_t>& m, int bit, int n);
  static bool mask_test(const std::vector<std::uint64_t>& m, int bit);
  static bool mask_has_all(const std::vector<std::uint64_t>& m, const std::vector<int>& ranks);

  Group& group_or_throw(std::uint16_t id);
  SeqState& pending(Group& g, std::uint32_t seq);

  /// Blocking tail every collective shares: wait for completion, cancel
  /// timers, record latency, prune buffered state, advance seq. Returns
  /// op.ok. Caller holds the interrupt mask.
  bool finish_wait(Group& g, obs::LatencyHistogram& hist);
  void arm_timers(Group& g);
  void complete_op(Group& g);                       // success path (interrupt or thread ctx)
  void fail_op(Group& g, const std::string& what);  // timeout/failed path

  // per-algorithm progress (called at op start and on each arrival)
  void progress_tree(Group& g);
  void advance_dissem(Group& g);
  void start_dissem_round(Group& g, int round);
  void deliver_buffered_bcast(Group& g, SeqState& s);
  void retransmit_tick(std::uint16_t gid);
  void timeout_fire(std::uint16_t gid);
  std::string missing_ranks(const Group& g) const;

  // message I/O
  void send_msg(Group& g, std::uint32_t seq, MsgKind kind, int dst_rank, int round = 0,
                std::uint64_t value = 0, std::uint8_t rop = 0, bool is_retransmit = false);
  /// Root fan-out: one multicast over the group's HUB tree (or a unicast
  /// sweep when no tree was installed). `payload`/`len` only for BcastData.
  void send_fanout(Group& g, MsgKind kind, std::uint64_t value, std::uint8_t rop,
                   hw::CabAddr payload = 0, std::size_t len = 0);
  void handle_msg(const CollHeader& h, const core::Message& m);
  void handle_stale(Group& g, const CollHeader& h);

  proto::Datalink& dl_;
  core::Mailbox& input_;
  std::map<std::uint16_t, Group> groups_;
  std::string last_error_;

  std::uint64_t msgs_sent_ = 0;
  std::uint64_t msgs_received_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t ops_failed_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t stale_drops_ = 0;

  obs::LatencyHistogram barrier_lat_;
  obs::LatencyHistogram bcast_lat_;
  obs::LatencyHistogram reduce_lat_;

  // Scratch CAB-memory buffer holding an in-flight bcast payload at the
  // root (kept for retransmits; released when the op completes).
  core::Message bcast_scratch_{};
  bool bcast_scratch_valid_ = false;

  // Last member: probes read the counters above.
  obs::Registration metrics_reg_;
};

}  // namespace nectar::coll
