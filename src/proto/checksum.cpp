#include "proto/checksum.hpp"

#include "sim/costs.hpp"

namespace nectar::proto {

void InternetChecksum::update(std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  std::uint32_t s = sum_;
  if (odd_ && !data.empty()) {
    // Pair the dangling byte with the first byte of this span.
    s += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    s += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    s += static_cast<std::uint32_t>(data[i]) << 8;
    odd_ = true;
  }
  sum_ = s;
}

std::uint16_t InternetChecksum::value() const {
  std::uint32_t s = sum_;
  while (s >> 16) s = (s & 0xFFFF) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xFFFF);
}

std::uint16_t InternetChecksum::compute(std::span<const std::uint8_t> data) {
  InternetChecksum c;
  c.update(data);
  return c.value();
}

std::uint16_t InternetChecksum::compute2(std::span<const std::uint8_t> a,
                                         std::span<const std::uint8_t> b) {
  InternetChecksum c;
  c.update(a);
  c.update(b);
  return c.value();
}

bool InternetChecksum::verify(std::span<const std::uint8_t> data) {
  InternetChecksum c;
  c.update(data);
  // A buffer containing a correct checksum sums to 0xFFFF (complement 0).
  return c.value() == 0;
}

std::int64_t checksum_cost(std::size_t bytes) {
  return static_cast<std::int64_t>(bytes) * sim::costs::kChecksumPerByte;
}

}  // namespace nectar::proto
