#include "nectarine/lockmgr.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"

namespace nectar::nectarine {
namespace {

struct Fixture {
  net::NectarSystem sys{4};
  // The lock table lives on node 0's CAB (§5.3: offload locking to the CAB).
  LockServer server{sys.runtime(0), sys.stack(0).reqresp, sys.stack(0).rmp};
};

TEST(LockMgr, ExclusiveAcquireRelease) {
  Fixture f;
  bool done = false;
  f.sys.runtime(1).fork_app("client", [&] {
    LockClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address(), 1);
    EXPECT_TRUE(c.acquire("table:accounts", LockServer::Mode::Exclusive));
    EXPECT_EQ(f.server.locks_held(), 1u);
    EXPECT_TRUE(c.release("table:accounts"));
    done = true;
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(done);
  EXPECT_EQ(f.server.locks_held(), 0u);
  EXPECT_EQ(f.server.grants(), 1u);
}

TEST(LockMgr, SharedHoldersCoexist) {
  Fixture f;
  int granted = 0;
  for (int n = 1; n <= 3; ++n) {
    f.sys.runtime(n).fork_app("reader", [&f, n, &granted] {
      LockClient c(f.sys.runtime(n), f.sys.stack(n).reqresp, f.server.address(),
                   static_cast<std::uint32_t>(n));
      if (c.acquire("catalog", LockServer::Mode::Shared)) ++granted;
      // Hold for a while: all three must be in simultaneously.
      f.sys.runtime(n).cpu().sleep_for(sim::msec(5));
      c.release("catalog");
    });
  }
  f.sys.net().run_until(sim::sec(2));
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(f.server.queued_waits(), 0u);  // shared never queued behind shared
}

TEST(LockMgr, ExclusiveWaitsForSharedToDrain) {
  Fixture f;
  std::vector<std::string> order;
  f.sys.runtime(1).fork_app("reader", [&] {
    LockClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address(), 1);
    ASSERT_TRUE(c.acquire("row:42", LockServer::Mode::Shared));
    order.push_back("reader-in");
    f.sys.runtime(1).cpu().sleep_for(sim::msec(10));
    order.push_back("reader-out");
    c.release("row:42");
  });
  f.sys.runtime(2).fork_app("writer", [&] {
    f.sys.runtime(2).cpu().sleep_for(sim::msec(2));  // reader goes first
    LockClient c(f.sys.runtime(2), f.sys.stack(2).reqresp, f.server.address(), 2);
    ASSERT_TRUE(c.acquire("row:42", LockServer::Mode::Exclusive));
    order.push_back("writer-in");
    c.release("row:42");
  });
  f.sys.net().run_until(sim::sec(2));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "reader-in");
  EXPECT_EQ(order[1], "reader-out");
  EXPECT_EQ(order[2], "writer-in");  // blocked until the shared holder left
  EXPECT_GE(f.server.queued_waits(), 1u);
}

TEST(LockMgr, TryAcquireDoesNotBlock) {
  Fixture f;
  bool probe_result = true;
  f.sys.runtime(1).fork_app("holder", [&] {
    LockClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address(), 1);
    ASSERT_TRUE(c.acquire("x", LockServer::Mode::Exclusive));
    f.sys.runtime(1).cpu().sleep_for(sim::msec(20));
    c.release("x");
  });
  f.sys.runtime(2).fork_app("prober", [&] {
    f.sys.runtime(2).cpu().sleep_for(sim::msec(5));
    LockClient c(f.sys.runtime(2), f.sys.stack(2).reqresp, f.server.address(), 2);
    probe_result = c.try_acquire("x", LockServer::Mode::Exclusive);
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_FALSE(probe_result);
}

TEST(LockMgr, ReleaseWithoutHoldReportsNotHeld) {
  Fixture f;
  bool released = true;
  f.sys.runtime(1).fork_app("client", [&] {
    LockClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address(), 1);
    released = c.release("never-held");
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_FALSE(released);
}

TEST(LockMgr, FifoFairnessAcrossWriters) {
  Fixture f;
  std::vector<int> grant_order;
  f.sys.runtime(1).fork_app("holder", [&] {
    LockClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address(), 1);
    ASSERT_TRUE(c.acquire("q", LockServer::Mode::Exclusive));
    f.sys.runtime(1).cpu().sleep_for(sim::msec(10));
    c.release("q");
  });
  for (int n = 2; n <= 3; ++n) {
    f.sys.runtime(n).fork_app("writer", [&f, n, &grant_order] {
      // Stagger so node 2 queues before node 3.
      f.sys.runtime(n).cpu().sleep_for(sim::msec(n));
      LockClient c(f.sys.runtime(n), f.sys.stack(n).reqresp, f.server.address(),
                   static_cast<std::uint32_t>(n));
      if (c.acquire("q", LockServer::Mode::Exclusive)) {
        grant_order.push_back(n);
        f.sys.runtime(n).cpu().sleep_for(sim::msec(2));
        c.release("q");
      }
    });
  }
  f.sys.net().run_until(sim::sec(2));
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], 2);  // queued first, granted first
  EXPECT_EQ(grant_order[1], 3);
}

TEST(LockMgr, LossyNetworkStillAtMostOnce) {
  // Retransmitted acquires must not double-grant (the reqresp duplicate
  // cache) and deferred grants must survive loss (RMP).
  Fixture f;
  f.sys.net().cab(1).out_link().set_drop_rate(0.3, 91);
  f.sys.net().cab(0).out_link().set_drop_rate(0.2, 92);
  bool done = false;
  f.sys.runtime(1).fork_app("client", [&] {
    LockClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address(), 1);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(c.acquire("contended", LockServer::Mode::Exclusive));
      ASSERT_TRUE(c.release("contended"));
    }
    done = true;
  });
  f.sys.net().run_until(sim::sec(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(f.server.locks_held(), 0u);
}

}  // namespace
}  // namespace nectar::nectarine
