#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/runtime.hpp"
#include "host/process.hpp"

namespace nectar::host {

/// The CAB device driver in the host operating system (paper §3.2).
///
/// Provides host processes with:
///  - the mmap of CAB memory (read/write/block access, each charged as VME
///    programmed I/O or block DMA on the shared bus);
///  - Wait on host condition variables, by polling (no system call) or by
///    blocking in the driver until the CAB interrupts the host;
///  - Signal, and posting requests to the CAB signal queue + doorbell;
///  - a simple host-to-CAB RPC built from the signal queue and a sync.
class CabDriver {
 public:
  CabDriver(Host& host, core::CabRuntime& cab);

  CabDriver(const CabDriver&) = delete;
  CabDriver& operator=(const CabDriver&) = delete;

  Host& host() { return host_; }
  core::CabRuntime& cab() { return cab_; }

  // --- mmap'ed access to CAB memory (charged VME programmed I/O) -------------

  std::uint32_t read32(hw::CabAddr a);
  void write32(hw::CabAddr a, std::uint32_t v);
  std::uint8_t read8(hw::CabAddr a);
  void read_block(hw::CabAddr a, std::span<std::uint8_t> out);
  void write_block(hw::CabAddr a, std::span<const std::uint8_t> in);

  /// Bulk transfers via the CAB's VME DMA channel (the driver blocks the
  /// calling process until completion).
  void dma_to_cab(std::span<const std::uint8_t> host_src, hw::CabAddr dst);
  void dma_from_cab(hw::CabAddr src, std::span<std::uint8_t> host_dst);

  /// Copy threshold: smaller transfers use programmed I/O, larger ones DMA
  /// (setting up a DMA costs more than a few word writes).
  static constexpr std::size_t kDmaThreshold = 128;
  void copy_to_cab(std::span<const std::uint8_t> host_src, hw::CabAddr dst);
  void copy_from_cab(hw::CabAddr src, std::span<std::uint8_t> host_dst);

  // --- host condition variables (§3.2) -----------------------------------------

  using HostCondId = core::HostSignaling::HostCondId;

  /// Read the poll word (one VME access).
  std::uint32_t poll(HostCondId cond);

  /// Busy-wait until the poll value differs from `last_seen`; returns the
  /// new value. "Using polling, host processes can wait for host conditions
  /// without incurring the overhead of a system call."
  std::uint32_t wait_poll(HostCondId cond, std::uint32_t last_seen);

  /// Block in the driver until signaled ("the CAB driver records that the
  /// process is interested ... and puts the process to sleep"); woken by the
  /// driver's interrupt handler. Returns the new poll value.
  std::uint32_t wait_blocking(HostCondId cond, std::uint32_t last_seen);

  /// Signal a host condition from the host side.
  void signal(HostCondId cond);

  // --- CAB signal queue / doorbell -------------------------------------------------

  /// Post a request to the CAB signal queue and ring the doorbell.
  void post_to_cab(core::SignalElement e);

  /// Simple host-to-CAB RPC (§3.2): post `opcode(param, aux)`, block until
  /// the CAB writes the result into a host-pool sync, return it.
  std::uint32_t call_cab(std::uint16_t opcode, std::uint32_t param, std::uint32_t aux = 0);

  /// Dispatch for CAB->host requests beyond condition signals (§3.2: "this
  /// queue can also be used by the CAB for other kinds of requests to the
  /// host, such as invocation of host I/O and debugging facilities").
  /// Handlers run in the driver's interrupt context on the host CPU.
  void register_host_opcode(std::uint16_t opcode,
                            std::function<void(core::SignalElement)> handler);

  std::uint64_t host_interrupts() const { return host_interrupts_; }

 private:
  void on_host_interrupt();  // drains the host signal queue

  Host& host_;
  core::CabRuntime& cab_;
  hw::VmeBus& vme_;

  /// Processes blocked in wait_blocking, by condition.
  std::map<HostCondId, std::vector<core::Thread*>> sleepers_;
  std::map<std::uint16_t, std::function<void(core::SignalElement)>> host_opcodes_;
  std::uint64_t host_interrupts_ = 0;
};

/// CAB-side opcode for RPC completion plumbing: the host passes the sync id
/// in `aux`; CAB handlers write results there.
constexpr std::uint16_t kOpRpcBase = 100;

}  // namespace nectar::host
