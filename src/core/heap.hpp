#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hw/memory.hpp"

namespace nectar::core {

class Cpu;
class Thread;

/// Allocator for message buffers in CAB data memory (paper §3.3: "buffer
/// space for messages is allocated from a common heap ... better utilization
/// of the CAB data memory since it is shared among all mailboxes").
///
/// First-fit free list with coalescing. Block metadata is kept host-side
/// (the simulated SPARC's bookkeeping structures are not themselves part of
/// any measured data path); the payload bytes live in real CAB memory.
class BufferHeap {
 public:
  BufferHeap(hw::CabMemory& memory, hw::CabAddr base = hw::kDataBase,
             std::size_t size = hw::kDataSize);

  /// Allocate `len` bytes (8-byte aligned). Returns 0 when no space —
  /// callers block and retry after notify_space().
  hw::CabAddr alloc(std::size_t len);
  void free(hw::CabAddr addr);

  /// Size originally requested for an allocated block.
  std::size_t size_of(hw::CabAddr addr) const;
  bool is_allocated(hw::CabAddr addr) const { return allocated_.count(addr) > 0; }

  /// Threads blocked waiting for heap space (Begin_Put with a full heap).
  void wait_for_space(Cpu& cpu);
  void notify_space();

  std::size_t bytes_free() const { return bytes_free_; }
  std::size_t bytes_in_use() const { return size_ - bytes_free_; }
  std::size_t capacity() const { return size_; }
  std::uint64_t allocs() const { return allocs_; }
  std::uint64_t frees() const { return frees_; }
  std::uint64_t failed_allocs() const { return failed_; }
  std::size_t free_blocks() const { return free_.size(); }

 private:
  hw::CabMemory& memory_;
  hw::CabAddr base_;
  std::size_t size_;
  std::map<hw::CabAddr, std::size_t> free_;       // addr -> block size
  std::map<hw::CabAddr, std::size_t> allocated_;  // addr -> block size
  std::size_t bytes_free_;
  std::uint64_t allocs_ = 0;
  std::uint64_t frees_ = 0;
  std::uint64_t failed_ = 0;
  std::vector<Thread*> space_waiters_;
};

}  // namespace nectar::core
