// bench_diff: compare two nectar-bench-report JSON files under per-metric
// tolerance rules and emit a one-line trend row. The CI regression gate runs
// it against the committed BENCH_*.json baselines.
//
//   bench_diff <baseline.json> <candidate.json>
//              [--wall-tolerance <pct>|inf] [--tol <substr>=<pct>|inf]...
//              [--trend <path>] [--name <label>]
//
// Matching rules:
//   * schema/bench/params must match exactly — different parameters mean the
//     two runs are not comparable, which is a failure, not a diff.
//   * result rows are matched by name; a row missing from either side fails.
//   * deterministic rows (the default) must match to the byte of their
//     formatted value — the simulator is deterministic, so any drift is a
//     real behavior change.
//   * host wall-clock rows (name contains "wall", "work_ns" or
//     "barrier_wait") are compared under --wall-tolerance percent; the
//     default "inf" ignores them entirely, because CI builders make wall
//     time meaningless (see bench_parallel.cpp).
//   * --tol substr=pct adds a relative tolerance for any row whose name
//     contains substr (first match wins, checked before the wall rule).
//
// Output: a table of non-identical rows, then one "TREND ..." line
// summarizing the comparison (machine-grepable); --trend appends the same
// summary as a JSON line to a trendline file, building a history across CI
// runs. Exit 0 = within tolerance, 1 = regression/mismatch, 2 = usage or
// unreadable input.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using nectar::obs::json::Value;

struct ToleranceRule {
  std::string substr;
  double pct = 0.0;  // relative tolerance in percent; INFINITY = ignore row
};

struct Options {
  std::string baseline;
  std::string candidate;
  std::string trend_path;
  std::string label;
  double wall_pct = INFINITY;
  std::vector<ToleranceRule> rules;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <candidate.json>\n"
               "       [--wall-tolerance <pct>|inf] [--tol <substr>=<pct>|inf]...\n"
               "       [--trend <path>] [--name <label>]\n");
  std::exit(2);
}

double parse_pct(const std::string& text) {
  if (text == "inf") return INFINITY;
  try {
    std::size_t pos = 0;
    double v = std::stod(text, &pos);
    if (pos != text.size() || v < 0.0) usage();
    return v;
  } catch (const std::exception&) {
    usage();
  }
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--wall-tolerance" && i + 1 < argc) {
      o.wall_pct = parse_pct(argv[++i]);
    } else if (a == "--tol" && i + 1 < argc) {
      std::string spec = argv[++i];
      std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) usage();
      o.rules.push_back({spec.substr(0, eq), parse_pct(spec.substr(eq + 1))});
    } else if (a == "--trend" && i + 1 < argc) {
      o.trend_path = argv[++i];
    } else if (a == "--name" && i + 1 < argc) {
      o.label = argv[++i];
    } else if (!a.empty() && a[0] != '-' && o.baseline.empty()) {
      o.baseline = a;
    } else if (!a.empty() && a[0] != '-' && o.candidate.empty()) {
      o.candidate = a;
    } else {
      usage();
    }
  }
  if (o.baseline.empty() || o.candidate.empty()) usage();
  return o;
}

Value load_report(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  Value doc;
  try {
    doc = Value::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    std::exit(2);
  }
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "nectar-bench-report") {
    std::fprintf(stderr, "error: %s is not a nectar-bench-report document\n", path.c_str());
    std::exit(2);
  }
  return doc;
}

bool wall_row(const std::string& name) {
  return name.find("wall") != std::string::npos || name.find("work_ns") != std::string::npos ||
         name.find("barrier_wait") != std::string::npos;
}

/// Tolerance for a row: --tol rules first (in order), then the wall rule,
/// else exact (0%).
double tolerance_for(const Options& o, const std::string& name) {
  for (const ToleranceRule& r : o.rules) {
    if (name.find(r.substr) != std::string::npos) return r.pct;
  }
  if (wall_row(name)) return o.wall_pct;
  return 0.0;
}

std::map<std::string, const Value*> rows_by_name(const Value& doc, const std::string& path) {
  std::map<std::string, const Value*> rows;
  const Value* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    std::fprintf(stderr, "error: %s has no results array\n", path.c_str());
    std::exit(2);
  }
  for (const Value& r : results->items()) {
    const Value* name = r.find("name");
    if (name == nullptr || !name->is_string()) continue;
    if (!rows.emplace(name->as_string(), &r).second) {
      std::fprintf(stderr, "error: %s: duplicate result row '%s'\n", path.c_str(),
                   name->as_string().c_str());
      std::exit(2);
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_args(argc, argv);
  Value base = load_report(opt.baseline);
  Value cand = load_report(opt.candidate);
  if (opt.label.empty()) {
    const Value* bench = base.find("bench");
    opt.label = bench != nullptr && bench->is_string() ? bench->as_string() : "bench";
  }

  int failures = 0;

  // Different bench or parameters: the runs are not comparable.
  for (const char* key : {"bench", "params"}) {
    const Value* a = base.find(key);
    const Value* b = cand.find(key);
    std::string da = a != nullptr ? a->dump() : "(absent)";
    std::string db = b != nullptr ? b->dump() : "(absent)";
    if (da != db) {
      std::printf("MISMATCH %-10s baseline=%s candidate=%s\n", key, da.c_str(), db.c_str());
      ++failures;
    }
  }

  auto base_rows = rows_by_name(base, opt.baseline);
  auto cand_rows = rows_by_name(cand, opt.candidate);

  std::size_t compared = 0, identical = 0, within = 0, ignored = 0;
  double max_rel_pct = 0.0;
  for (const auto& [name, brow] : base_rows) {
    auto it = cand_rows.find(name);
    if (it == cand_rows.end()) {
      std::printf("MISSING  %-40s (row absent from candidate)\n", name.c_str());
      ++failures;
      continue;
    }
    const Value* bv = brow->find("value");
    const Value* cv = it->second->find("value");
    if (bv == nullptr || cv == nullptr || !bv->is_number() || !cv->is_number()) {
      std::printf("BADROW   %-40s (non-numeric value)\n", name.c_str());
      ++failures;
      continue;
    }
    ++compared;
    double tol = tolerance_for(opt, name);
    // Exact rows compare by formatted value — the same byte-determinism the
    // committed reports are gated on, immune to double rounding surprises.
    if (nectar::obs::json::format_double(bv->as_double()) ==
        nectar::obs::json::format_double(cv->as_double())) {
      ++identical;
      continue;
    }
    double b_val = bv->as_double();
    double c_val = cv->as_double();
    double denom = std::fabs(b_val);
    double rel_pct = denom > 0.0 ? std::fabs(c_val - b_val) / denom * 100.0 : INFINITY;
    if (std::isinf(tol)) {
      ++ignored;
      continue;
    }
    if (rel_pct > max_rel_pct && !std::isinf(rel_pct)) max_rel_pct = rel_pct;
    if (rel_pct <= tol) {
      std::printf("WITHIN   %-40s %14g -> %-14g (%+.2f%%, tol %.2f%%)\n", name.c_str(), b_val,
                  c_val, (c_val - b_val) / denom * 100.0, tol);
      ++within;
    } else {
      std::printf("REGRESS  %-40s %14g -> %-14g (%+.2f%%, tol %.2f%%)\n", name.c_str(), b_val,
                  c_val, denom > 0.0 ? (c_val - b_val) / denom * 100.0 : INFINITY, tol);
      ++failures;
    }
  }
  for (const auto& [name, row] : cand_rows) {
    (void)row;
    if (base_rows.find(name) == base_rows.end()) {
      std::printf("EXTRA    %-40s (row absent from baseline)\n", name.c_str());
      ++failures;
    }
  }

  const char* verdict = failures == 0 ? "PASS" : "FAIL";
  std::printf("TREND %s %s rows=%zu identical=%zu within_tol=%zu ignored=%zu failures=%d "
              "max_rel_pct=%.4f\n",
              verdict, opt.label.c_str(), compared, identical, within, ignored, failures,
              max_rel_pct);

  if (!opt.trend_path.empty()) {
    Value row = Value::object();
    row.set("bench", opt.label);
    row.set("verdict", verdict);
    row.set("rows", static_cast<std::int64_t>(compared));
    row.set("identical", static_cast<std::int64_t>(identical));
    row.set("within_tol", static_cast<std::int64_t>(within));
    row.set("ignored", static_cast<std::int64_t>(ignored));
    row.set("failures", static_cast<std::int64_t>(failures));
    row.set("max_rel_pct", max_rel_pct);
    std::ofstream f(opt.trend_path, std::ios::binary | std::ios::app);
    if (!f) {
      std::fprintf(stderr, "error: cannot append trend row to %s\n", opt.trend_path.c_str());
      return 2;
    }
    f << row.dump() << '\n';
  }
  return failures == 0 ? 0 : 1;
}
