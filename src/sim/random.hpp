#pragma once

#include <cstdint>
#include <string_view>

namespace nectar::sim {

/// Small deterministic PRNG (xorshift64*), used for fault injection and
/// workload generation. Seeded explicitly everywhere so runs are reproducible.
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed ? seed : 1) {}

  std::uint64_t next_u64() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) { return bound ? next_u64() % bound : 0; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

/// Derive an independent stream seed from a master seed and an element name
/// (FNV-1a over the name, finalized with a splitmix64 round so nearby names
/// do not produce correlated xorshift states). Every per-element RNG in a
/// scenario — link fault streams, workload arrival processes, fault jitter —
/// is seeded this way, so one master seed reproduces the whole run while
/// distinct elements ("node3.out/drop" vs "node4.out/drop") get
/// decorrelated streams.
constexpr std::uint64_t derive_seed(std::uint64_t master, std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ull ^ master;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  h += 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h ? h : 1;
}

}  // namespace nectar::sim
