#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "hw/mcast.hpp"
#include "hw/pool.hpp"
#include "obs/span.hpp"
#include "sim/action.hpp"
#include "sim/time.hpp"

namespace nectar::hw {

/// Per-frame framing overhead on the wire: preamble/flag + length field +
/// 4-byte hardware CRC trailer.
constexpr std::size_t kFrameOverhead = 8;

/// Send-completion callable (DMA send channel / link head free). Sized to
/// hold a posted-interrupt wrapper around a protocol's own InplaceAction
/// without spilling to the heap.
using SendCallback = sim::InplaceFunction<void(), 64>;

/// A frame in flight on the Nectar fabric.
///
/// `route` holds one output-port number per HUB hop (source routing, §2.1),
/// shared immutably with the datalink's route table; each HUB consumes one
/// byte by advancing `hops_done`. `payload` is the datalink frame (datalink
/// header + packet) in a pool-recycled buffer; the sending CAB's hardware
/// computes `crc` over it as it streams out (§2.2), and the receiving CAB's
/// hardware recomputes it.
struct Frame {
  RouteRef route;
  std::size_t hops_done = 0;
  PooledBytes payload;
  std::uint32_t crc = 0;
  bool corrupted = false;  ///< set when fault injection damaged the bytes
  std::uint64_t id = 0;
  int src_node = -1;  ///< originating CAB (for stats/debug only)
  /// Causal-trace mirror of the 16-byte stamp riding in the payload's
  /// datalink headroom (obs/span.hpp): lets links, HUB ports, and FIFOs
  /// attribute queueing/serialization time to the trace without parsing
  /// payload bytes. Invalid (trace_id 0) for unsampled frames.
  obs::TraceContext trace{};
  /// Multicast: when valid, `route` is empty and each HUB replicates the
  /// frame per the tree node `mcast_node` instead of consuming a route byte.
  /// CAB-bound replicas have `mcast` cleared, so they arrive as plain
  /// unicast frames.
  McastRef mcast{};
  std::int32_t mcast_node = 0;

  std::size_t remaining_hops() const {
    return mcast.valid() ? mcast.node(mcast_node).depth : route.size() - hops_done;
  }
  std::uint8_t next_port() const { return route[hops_done]; }

  /// Bytes this frame occupies on the wire at the current hop. For multicast
  /// the tree node's depth (max port bytes on any remaining path) stands in
  /// for the unicast route bytes.
  std::size_t wire_bytes() const { return remaining_hops() + payload.size() + kFrameOverhead; }
};

/// Anything that can accept frames: a HUB input port or a CAB input FIFO.
///
/// `offer` is called at the frame's *first-byte* arrival time with the
/// *last-byte* time attached, so cut-through elements can begin work before
/// the frame has fully arrived. If the sink cannot buffer the frame it
/// returns false; the upstream element must hold it and re-offer after the
/// sink invokes the drain-notify callback (low-level flow control, §2.1).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual bool offer(Frame&& f, sim::SimTime first_byte, sim::SimTime last_byte) = 0;
  virtual void set_drain_notify(std::function<void()> fn) = 0;
};

}  // namespace nectar::hw
