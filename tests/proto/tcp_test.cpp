#include "proto/tcp.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "net/system.hpp"

namespace nectar::proto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage_msg(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

/// Read the full stream from a connection's receive mailbox until EOF
/// (zero-length message) or `expected` bytes.
std::string read_stream(core::CabRuntime& rt, TcpConnection* c, std::size_t expected) {
  std::string out;
  while (out.size() < expected) {
    core::Message m = c->receive_mailbox().begin_get();
    if (m.len == 0) {
      c->receive_mailbox().end_get(m);
      break;
    }
    out += read_bytes(rt, m);
    c->receive_mailbox().end_get(m);
  }
  return out;
}

struct TcpFixture {
  net::NectarSystem sys;
  explicit TcpFixture(TcpConfig cfg = {}, std::size_t mtu = Ip::kDefaultMtu)
      : sys(2, false, cfg, mtu) {}

  Tcp& tcp(int n) { return sys.stack(n).tcp; }
  core::CabRuntime& rt(int n) { return sys.runtime(n); }
};

TEST(TcpTest, ThreeWayHandshake) {
  TcpFixture f;
  TcpConnection* server = nullptr;
  TcpConnection* client = nullptr;
  bool server_ok = false, client_ok = false;
  f.rt(1).fork_app("server", [&] {
    server = f.tcp(1).listen(80);
    server_ok = f.tcp(1).wait_established(server);
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    client = f.tcp(0).connect(5000, ip_of_node(1), 80);
    client_ok = f.tcp(0).wait_established(client);
  });
  f.sys.engine().run();
  EXPECT_TRUE(server_ok);
  EXPECT_TRUE(client_ok);
  EXPECT_EQ(server->state(), TcpConnection::State::Established);
  EXPECT_EQ(client->state(), TcpConnection::State::Established);
  EXPECT_EQ(server->remote_port(), 5000);
  EXPECT_EQ(server->remote_addr(), ip_of_node(0));
}

TEST(TcpTest, DataTransferByteExact) {
  TcpFixture f;
  std::string sent = "The Nectar communication processor offloads TCP from the host.";
  std::string got;
  f.rt(1).fork_app("server", [&] {
    TcpConnection* c = f.tcp(1).listen(80);
    f.tcp(1).wait_established(c);
    got = read_stream(f.rt(1), c, sent.size());
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    TcpConnection* c = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(c));
    core::Mailbox& scratch = f.rt(0).create_mailbox("tx");
    f.tcp(0).send(c, stage_msg(scratch, f.rt(0), sent));
  });
  f.sys.engine().run();
  EXPECT_EQ(got, sent);
}

TEST(TcpTest, LargeTransferSegmentsAtMss) {
  TcpFixture f;
  std::string big;
  for (int i = 0; i < 40000; ++i) big.push_back(static_cast<char>('0' + i % 75));
  std::string got;
  f.rt(1).fork_app("server", [&] {
    TcpConnection* c = f.tcp(1).listen(80);
    f.tcp(1).wait_established(c);
    got = read_stream(f.rt(1), c, big.size());
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    TcpConnection* c = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(c));
    core::Mailbox& scratch = f.rt(0).create_mailbox("tx");
    f.tcp(0).send(c, stage_msg(scratch, f.rt(0), big));
    f.tcp(0).wait_drained(c);
  });
  f.sys.engine().run();
  EXPECT_EQ(got.size(), big.size());
  EXPECT_EQ(got, big);
  // 40000 bytes / MSS(9K-40) => at least 5 data segments.
  EXPECT_GE(f.tcp(0).segments_sent(), 5u);
}

TEST(TcpTest, RetransmissionRecoversFromLoss) {
  TcpFixture f;
  f.sys.net().cab(0).out_link().set_drop_rate(0.15, 77);
  std::string data(20000, 'r');
  std::string got;
  f.rt(1).fork_app("server", [&] {
    TcpConnection* c = f.tcp(1).listen(80);
    f.tcp(1).wait_established(c);
    got = read_stream(f.rt(1), c, data.size());
  });
  TcpConnection* client = nullptr;
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    client = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(client));
    core::Mailbox& scratch = f.rt(0).create_mailbox("tx");
    f.tcp(0).send(client, stage_msg(scratch, f.rt(0), data));
    f.tcp(0).wait_drained(client);
  });
  f.sys.net().run_until(sim::sec(10));
  EXPECT_EQ(got, data);  // reliable despite 15% frame loss
  EXPECT_GT(client->retransmissions(), 0u);
}

TEST(TcpTest, CorruptionIsRepairedEndToEnd) {
  TcpFixture f;
  f.sys.net().cab(0).out_link().set_corrupt_rate(0.10, 31);
  std::string data(16000, 'c');
  std::string got;
  f.rt(1).fork_app("server", [&] {
    TcpConnection* c = f.tcp(1).listen(80);
    f.tcp(1).wait_established(c);
    got = read_stream(f.rt(1), c, data.size());
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    TcpConnection* c = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(c));
    core::Mailbox& scratch = f.rt(0).create_mailbox("tx");
    f.tcp(0).send(c, stage_msg(scratch, f.rt(0), data));
  });
  f.sys.net().run_until(sim::sec(10));
  EXPECT_EQ(got, data);
}

TEST(TcpTest, BidirectionalStreams) {
  TcpFixture f;
  std::string a2b(5000, 'x'), b2a(7000, 'y');
  std::string got_at_b, got_at_a;
  f.rt(1).fork_app("server", [&] {
    TcpConnection* c = f.tcp(1).listen(80);
    f.tcp(1).wait_established(c);
    core::Mailbox& scratch = f.rt(1).create_mailbox("tx1");
    f.tcp(1).send(c, stage_msg(scratch, f.rt(1), b2a));
    got_at_b = read_stream(f.rt(1), c, a2b.size());
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    TcpConnection* c = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(c));
    core::Mailbox& scratch = f.rt(0).create_mailbox("tx0");
    f.tcp(0).send(c, stage_msg(scratch, f.rt(0), a2b));
    got_at_a = read_stream(f.rt(0), c, b2a.size());
  });
  f.sys.engine().run();
  EXPECT_EQ(got_at_b, a2b);
  EXPECT_EQ(got_at_a, b2a);
}

TEST(TcpTest, GracefulCloseDeliversEof) {
  TcpFixture f;
  bool got_eof = false;
  TcpConnection* server = nullptr;
  f.rt(1).fork_app("server", [&] {
    server = f.tcp(1).listen(80);
    f.tcp(1).wait_established(server);
    core::Message m = server->receive_mailbox().begin_get();
    got_eof = (m.len == 0);
    server->receive_mailbox().end_get(m);
  });
  TcpConnection* client = nullptr;
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    client = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(client));
    f.tcp(0).close(client);
  });
  f.sys.net().run_until(sim::sec(1));
  EXPECT_TRUE(got_eof);
  EXPECT_TRUE(server->remote_closed());
  // Client went FIN_WAIT_1 -> FIN_WAIT_2 (server hasn't closed its side).
  EXPECT_EQ(client->state(), TcpConnection::State::FinWait2);
}

TEST(TcpTest, FullCloseBothSidesReachesClosed) {
  TcpFixture f;
  TcpConnection* server = nullptr;
  TcpConnection* client = nullptr;
  f.rt(1).fork_app("server", [&] {
    server = f.tcp(1).listen(80);
    f.tcp(1).wait_established(server);
    // Wait for client FIN (EOF marker), then close our side.
    core::Message m = server->receive_mailbox().begin_get();
    server->receive_mailbox().end_get(m);
    f.tcp(1).close(server);
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    client = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(client));
    f.tcp(0).close(client);
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_EQ(server->state(), TcpConnection::State::Closed);
  // Client passed through TIME_WAIT and fully closed after 2*MSL.
  EXPECT_EQ(client->state(), TcpConnection::State::Closed);
}

TEST(TcpTest, DataToClosedPortGetsReset) {
  TcpFixture f;
  TcpConnection* client = nullptr;
  f.rt(0).fork_app("client", [&] {
    client = f.tcp(0).connect(5000, ip_of_node(1), 4444);  // nobody listening
    f.tcp(0).wait_established(client);
  });
  f.sys.net().run_until(sim::sec(1));
  EXPECT_TRUE(client->reset());
  EXPECT_TRUE(client->closed());
  EXPECT_GE(f.tcp(1).resets_sent(), 1u);
}

TEST(TcpTest, ChecksumOffStillDeliversOnCleanWire) {
  TcpConfig cfg;
  cfg.software_checksum = false;  // the "TCP w/o checksum" configuration (§6.2)
  TcpFixture f(cfg);
  std::string data(10000, 'n');
  std::string got;
  f.rt(1).fork_app("server", [&] {
    TcpConnection* c = f.tcp(1).listen(80);
    f.tcp(1).wait_established(c);
    got = read_stream(f.rt(1), c, data.size());
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    TcpConnection* c = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(c));
    core::Mailbox& scratch = f.rt(0).create_mailbox("tx");
    f.tcp(0).send(c, stage_msg(scratch, f.rt(0), data));
  });
  f.sys.engine().run();
  EXPECT_EQ(got, data);
}

TEST(TcpTest, ChecksumCostShowsUpInTransferTime) {
  // The same transfer with and without software checksumming: the checksum
  // run must be measurably slower (this is the Fig. 7 mechanism).
  auto run_transfer = [](bool checksum) {
    TcpConfig cfg;
    cfg.software_checksum = checksum;
    TcpFixture f(cfg);
    std::string data(64 * 1024, 'k');
    sim::SimTime done_at = 0;
    f.rt(1).fork_app("server", [&] {
      TcpConnection* c = f.tcp(1).listen(80);
      f.tcp(1).wait_established(c);
      std::string got = read_stream(f.rt(1), c, data.size());
      done_at = f.sys.engine().now();
    });
    f.rt(0).fork_app("client", [&] {
      f.rt(0).cpu().sleep_for(sim::usec(100));
      TcpConnection* c = f.tcp(0).connect(5000, ip_of_node(1), 80);
      f.tcp(0).wait_established(c);
      core::Mailbox& scratch = f.rt(0).create_mailbox("tx");
      f.tcp(0).send(c, stage_msg(scratch, f.rt(0), data));
    });
    f.sys.engine().run();
    return done_at;
  };
  sim::SimTime with = run_transfer(true);
  sim::SimTime without = run_transfer(false);
  EXPECT_GT(with, without + sim::msec(1));
}

TEST(TcpTest, SendRequestMailboxInlinePath) {
  // §4.2: "A user wishing to send data ... places a request in the TCP
  // send-request mailbox", data inline after the request header.
  TcpFixture f;
  std::string got;
  f.rt(1).fork_app("server", [&] {
    TcpConnection* c = f.tcp(1).listen(80);
    f.tcp(1).wait_established(c);
    got = read_stream(f.rt(1), c, 9);
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    TcpConnection* c = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(c));
    core::Mailbox& req_mb = f.tcp(0).send_request_mailbox();
    core::Message req = req_mb.begin_put(16 + 9);
    hw::CabMemory& mem = f.rt(0).board().memory();
    mem.write32(req.data, c->id());
    mem.write32(req.data + 4, Tcp::kSendReqInline);
    mem.write32(req.data + 8, 0);
    mem.write32(req.data + 12, 0);
    const char* s = "inline-tx";
    mem.write(req.data + 16,
              std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s), 9));
    req_mb.end_put(req);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "inline-tx");
}

TEST(TcpTest, RttEstimatorTracksNetworkDelay) {
  TcpFixture f;
  TcpConnection* client = nullptr;
  std::string data(30000, 'e');
  f.rt(1).fork_app("server", [&] {
    TcpConnection* c = f.tcp(1).listen(80);
    f.tcp(1).wait_established(c);
    read_stream(f.rt(1), c, data.size());
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    client = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(client));
    core::Mailbox& scratch = f.rt(0).create_mailbox("tx");
    f.tcp(0).send(client, stage_msg(scratch, f.rt(0), data));
    f.tcp(0).wait_drained(client);
  });
  f.sys.engine().run();
  // SRTT converged to something LAN-plausible: above zero, below 100 ms.
  EXPECT_GT(client->srtt(), 0);
  EXPECT_LT(client->srtt(), sim::msec(100));
}

TEST(TcpTest, SmallMtuForcesManySegments) {
  TcpFixture f({}, /*mtu=*/576);
  std::string data(10000, 's');
  std::string got;
  f.rt(1).fork_app("server", [&] {
    TcpConnection* c = f.tcp(1).listen(80);
    f.tcp(1).wait_established(c);
    got = read_stream(f.rt(1), c, data.size());
  });
  f.rt(0).fork_app("client", [&] {
    f.rt(0).cpu().sleep_for(sim::usec(100));
    TcpConnection* c = f.tcp(0).connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(f.tcp(0).wait_established(c));
    core::Mailbox& scratch = f.rt(0).create_mailbox("tx");
    f.tcp(0).send(c, stage_msg(scratch, f.rt(0), data));
  });
  f.sys.engine().run();
  EXPECT_EQ(got, data);
  EXPECT_GE(f.tcp(0).segments_sent(), 10000u / 536u);
}

}  // namespace
}  // namespace nectar::proto
