#include "coll/group.hpp"

#include <stdexcept>

namespace nectar::coll {

Algorithm parse_algorithm(const std::string& name) {
  if (name == "tree") return Algorithm::Tree;
  if (name == "dissemination" || name == "dissem" || name == "butterfly") {
    return Algorithm::Dissemination;
  }
  throw std::invalid_argument("coll: unknown algorithm '" + name + "' (tree|dissemination)");
}

const char* algorithm_name(Algorithm a) {
  return a == Algorithm::Tree ? "tree" : "dissemination";
}

}  // namespace nectar::coll
