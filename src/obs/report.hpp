#pragma once

// Machine-readable run reports for the bench/ binaries.
//
// Every benchmark keeps printing its human-readable table and additionally
// (with --json <path>) emits one of these: a versioned JSON document of the
// run's measurements. Committed reports (BENCH_*.json at the repo root) form
// the performance trajectory future PRs diff against — the simulation is
// deterministic, so any change in a committed number is a real behavioral
// change, not noise.
//
// Schema (docs/OBSERVABILITY.md has the full description):
//   {
//     "schema": "nectar-bench-report", "version": 1,
//     "bench": "<binary name>", "clock": "simulated",
//     "params":  { "<key>": <string|number>, ... },
//     "results": [ {"name": "...", "value": <number>, "unit": "..."}, ... ],
//     "metrics": <optional metrics snapshot document>
//   }

#include <cstdint>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace nectar::obs {

class RunReport {
 public:
  static constexpr int kVersion = 1;

  explicit RunReport(std::string bench);

  /// Run parameters (message size, rounds, ...) — context, not results.
  void param(const std::string& key, std::int64_t value);
  void param(const std::string& key, const std::string& value);

  /// One measurement. Units are free-form but conventional: "us", "Mbit/s",
  /// "ratio", "count". Names use dots for structure ("tcp.host_host").
  void add(const std::string& name, double value, const std::string& unit);

  /// Attach a metrics snapshot (rendered under "metrics").
  void attach_metrics(const Snapshot& snap);

  /// Attach an extra top-level section (e.g. "profile", "timelines"),
  /// rendered after "metrics" in insertion order. Attach each key once.
  void extra(const std::string& key, json::Value value);

  std::size_t result_count() const { return results_.size(); }
  std::string to_json_string() const;
  /// Write to `path`; returns false if the file could not be written.
  bool write(const std::string& path) const;

 private:
  std::string bench_;
  json::Value params_ = json::Value::object();
  json::Value results_ = json::Value::array();
  json::Value metrics_;  // null until attached
  json::Value extras_ = json::Value::object();
};

}  // namespace nectar::obs
