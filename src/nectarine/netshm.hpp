#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "nproto/reqresp.hpp"
#include "nproto/rmp.hpp"

namespace nectar::nectarine {

/// Network shared memory (paper §5.3 future work): "Using Mach together with
/// Nectar, we are investigating network shared memory. The CABs will run
/// external pager tasks that cooperate to provide the required consistency
/// guarantees."
///
/// Directory-based single-writer coherence, one pager task per CAB:
///  * every page has a *home* CAB holding the master copy and the directory
///    of caching readers;
///  * reads hit the local cache when valid, otherwise fetch from home (which
///    records the reader);
///  * writes go to home, which reliably invalidates every cached copy (RMP)
///    *before* acknowledging — invalidations are applied by a mailbox upcall
///    at interrupt level on each reader, so by the time the writer's call
///    returns, no stale copy is readable anywhere.
class NetSharedMemory {
 public:
  static constexpr std::size_t kPageSize = 1024;

  // Request ops ([u32 op][u32 page][payload]); response [u32 status][data].
  static constexpr std::uint32_t kOpReadPage = 1;
  static constexpr std::uint32_t kOpWritePage = 2;
  static constexpr std::uint32_t kOk = 1;
  static constexpr std::uint32_t kBad = 0;

  /// Addresses a peer pager exposes: its request-response service mailbox
  /// and its invalidation mailbox.
  struct PeerAddr {
    core::MailboxAddr service;
    core::MailboxAddr inval;
  };

  NetSharedMemory(core::CabRuntime& rt, nproto::ReqResp& reqresp, nproto::Rmp& rmp);

  NetSharedMemory(const NetSharedMemory&) = delete;
  NetSharedMemory& operator=(const NetSharedMemory&) = delete;

  /// This pager's addresses — hand them to the other nodes.
  PeerAddr addresses() const { return {service_.address(), inval_.address()}; }

  /// Wire up the cluster: `home_of(page)` maps a page to its home node and
  /// must agree everywhere; `peers` maps node id -> that node's addresses.
  void configure(std::function<int(std::uint32_t)> home_of, std::map<int, PeerAddr> peers);

  /// Read a full page into `out` (CAB thread context; blocks on a miss).
  void read(std::uint32_t page, std::span<std::uint8_t> out);

  /// Write a full page (CAB thread context; returns when globally coherent).
  void write(std::uint32_t page, std::span<const std::uint8_t> in);

  // --- stats ----------------------------------------------------------------

  std::uint64_t cache_hits() const { return hits_; }
  std::uint64_t cache_misses() const { return misses_; }
  std::uint64_t invalidations_sent() const { return inval_sent_; }
  std::uint64_t invalidations_applied() const { return inval_applied_; }
  std::uint64_t remote_writes() const { return remote_writes_; }
  bool cached(std::uint32_t page) const { return cache_.count(page) > 0; }

 private:
  void service_loop();
  void install_invalidation_upcall();
  int self() const { return rt_.node_id(); }

  /// Home side: apply a write — invalidate all readers, then store.
  void home_write(std::uint32_t page, const std::vector<std::uint8_t>& data, int writer_node);

  core::CabRuntime& rt_;
  nproto::ReqResp& reqresp_;
  nproto::Rmp& rmp_;
  core::Mailbox& service_;
  core::Mailbox& inval_;
  std::function<int(std::uint32_t)> home_of_;
  std::map<int, PeerAddr> peers_;

  // Home-side state.
  std::map<std::uint32_t, std::vector<std::uint8_t>> master_;
  std::map<std::uint32_t, std::set<int>> readers_;

  // Local cache.
  std::map<std::uint32_t, std::vector<std::uint8_t>> cache_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t inval_sent_ = 0;
  std::uint64_t inval_applied_ = 0;
  std::uint64_t remote_writes_ = 0;
};

}  // namespace nectar::nectarine
