#include "hw/link.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/pcap.hpp"
#include "obs/tracer.hpp"

namespace nectar::hw {

FiberLink::FiberLink(sim::Engine& engine, std::string name, double bits_per_sec,
                     sim::SimTime propagation)
    : engine_(engine), name_(std::move(name)), rate_(bits_per_sec), propagation_(propagation) {}

void FiberLink::attach(FrameSink* sink) {
  sink_ = sink;
  sink_->set_drain_notify([this] { on_drain(); });
}

void FiberLink::submit(Frame&& f, SendCallback on_sent) {
  if (f.trace.valid()) {
    if (auto* ct = obs::CausalTracer::active()) ct->stage(f.trace, "link.queue", name_);
  }
  queue_.push_back({std::move(f), std::move(on_sent)});
  try_start();
}

void FiberLink::set_corrupt_rate(double p) {
  set_corrupt_rate(p, sim::derive_seed(fault_seed_base_, name_ + "/corrupt"));
}

void FiberLink::set_corrupt_rate(double p, std::uint64_t seed) {
  corrupt_rate_ = p;
  corrupt_rng_ = sim::Random(seed);
}

void FiberLink::set_drop_rate(double p) {
  set_drop_rate(p, sim::derive_seed(fault_seed_base_, name_ + "/drop"));
}

void FiberLink::set_drop_rate(double p, std::uint64_t seed) {
  drop_rate_ = p;
  drop_rng_ = sim::Random(seed);
}

void FiberLink::try_start() {
  if (transmitting_ || blocked_.has_value() || queue_.empty()) return;
  if (sink_ == nullptr) throw std::logic_error("FiberLink " + name_ + ": no sink attached");
  transmitting_ = true;

  Frame f = std::move(queue_.front().frame);
  head_done_ = std::move(queue_.front().on_sent);
  queue_.pop_front();

  sim::SimTime ttime = sim::transmit_time(static_cast<std::int64_t>(f.wire_bytes()), rate_);
  sim::SimTime first = engine_.now() + propagation_;
  sim::SimTime last = first + ttime;

  ++frames_sent_;
  bytes_sent_ += f.wire_bytes();
  if (pcap_ != nullptr) pcap_->frame(engine_.now(), f.payload.bytes());
  if (f.trace.valid()) {
    if (auto* ct = obs::CausalTracer::active()) ct->stage(f.trace, "link.tx", name_);
  }

  // The head serializes one frame at a time, so explicit-stamp spans on the
  // wire track never overlap.
  NECTAR_TRACE(if (obs::tracing(tracer_)) {
    tracer_->begin_at(trace_track_, "link.tx", engine_.now());
    tracer_->end_at(trace_track_, "link.tx", engine_.now() + ttime);
  });

  // The link head frees once the last byte leaves the transmitter.
  engine_.schedule_in(ttime, [this] { on_head_sent(); });

  if (down_ || scripted_drops_armed_ > 0) {
    if (!down_) --scripted_drops_armed_;
    ++frames_dropped_;
    ++frames_dropped_faulted_;  // element failure, not the random stream
    NECTAR_TRACE(if (obs::tracing(tracer_)) tracer_->instant(trace_track_, "link.drop"));
    if (f.trace.valid()) {
      if (auto* ct = obs::CausalTracer::active()) {
        ct->annotate(f.trace, "drop.link_down");
        ct->stage(f.trace, "loss.wait", name_);
      }
    }
    return;
  }

  if (drop_rate_ > 0 && drop_rng_.chance(drop_rate_)) {
    ++frames_dropped_;  // the frame evaporates mid-flight
    NECTAR_TRACE(if (obs::tracing(tracer_)) tracer_->instant(trace_track_, "link.drop"));
    if (f.trace.valid()) {
      if (auto* ct = obs::CausalTracer::active()) {
        ct->annotate(f.trace, "drop.link");
        ct->stage(f.trace, "loss.wait", name_);
      }
    }
    return;
  }

  if (corrupt_rate_ > 0 && corrupt_rng_.chance(corrupt_rate_)) {
    // Flip a payload byte; the receiving CAB's hardware CRC will catch it.
    if (!f.payload.empty()) {
      std::size_t i = corrupt_rng_.next_below(f.payload.size());
      f.payload[i] ^= 0x5A;
    }
    f.corrupted = true;
    ++frames_corrupted_;
    NECTAR_TRACE(if (obs::tracing(tracer_)) tracer_->instant(trace_track_, "link.corrupt"));
  }

  // The frame rides in the in-flight queue (first-byte order) rather than in
  // the event capture; the event only needs `this`.
  in_flight_.push_back(InFlight{std::move(f), first, last});
  engine_.schedule_at(first, [this] { deliver_front(); });
}

void FiberLink::on_head_sent() {
  transmitting_ = false;
  // Move the completion out first: it may submit the next frame.
  SendCallback done = std::move(head_done_);
  if (done) done();
  try_start();
}

void FiberLink::deliver_front() {
  InFlight fl = std::move(in_flight_.front());
  in_flight_.pop_front();
  deliver(std::move(fl.frame), fl.first, fl.last);
}

void FiberLink::deliver(Frame&& f, sim::SimTime first, sim::SimTime last) {
  // FrameSink::offer leaves the frame intact when it returns false.
  if (!sink_->offer(std::move(f), first, last)) {
    // Downstream FIFO is full: the hardware's low-level flow control stalls
    // the stream. Hold the frame and re-offer when the sink drains.
    blocked_.emplace(std::move(f));
    blocked_span_ = last - first;
    return;
  }
  ++frames_delivered_;
}

void FiberLink::attach_tracer(obs::Tracer* tracer, int track) {
  tracer_ = tracer;
  trace_track_ = track;
}

void FiberLink::register_metrics(obs::Registration& reg, int node) const {
  reg.probe(node, "link", name_ + ".frames_sent",
            [this] { return static_cast<std::int64_t>(frames_sent_); });
  reg.probe(node, "link", name_ + ".bytes_sent",
            [this] { return static_cast<std::int64_t>(bytes_sent_); });
  reg.probe(node, "link", name_ + ".frames_corrupted",
            [this] { return static_cast<std::int64_t>(frames_corrupted_); });
  reg.probe(node, "link", name_ + ".frames_dropped",
            [this] { return static_cast<std::int64_t>(frames_dropped_); });
  // frames_dropped_faulted() stays accessor-only: adding a probe here would
  // perturb the committed metrics snapshots of every bench that never faults.
}

void FiberLink::on_drain() {
  if (blocked_.has_value()) {
    Frame f = std::move(*blocked_);
    blocked_.reset();
    sim::SimTime first = engine_.now();
    sim::SimTime last = first + blocked_span_;
    if (!sink_->offer(std::move(f), first, last)) {
      blocked_.emplace(std::move(f));
      return;
    }
    ++frames_delivered_;
  }
  try_start();
}

}  // namespace nectar::hw
