// Persistent listeners (Tcp::open_listener / accept): many concurrent
// clients on one well-known port — server behaviour the single-shot listen()
// the paper's measurement programs used cannot express.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "net/system.hpp"

namespace nectar::proto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

TEST(TcpListener, ThreeConcurrentClientsOnOnePort) {
  net::NectarSystem sys(4);
  std::multiset<std::string> got;
  // Server on node 3: accept three connections, read one message from each.
  sys.runtime(3).fork_app("server", [&] {
    TcpListener* l = sys.stack(3).tcp.open_listener(80);
    for (int i = 0; i < 3; ++i) {
      TcpConnection* c = sys.stack(3).tcp.accept(l);
      ASSERT_NE(c, nullptr);
      // One service thread per accepted connection — the fork-per-client
      // server shape.
      sys.runtime(3).fork_app("conn", [&sys, c, &got] {
        core::Message m = c->receive_mailbox().begin_get();
        got.insert(read_bytes(sys.runtime(3), m));
        c->receive_mailbox().end_get(m);
      });
    }
  });
  for (int n = 0; n < 3; ++n) {
    sys.runtime(n).fork_app("client", [&sys, n] {
      sys.runtime(n).cpu().sleep_for(sim::usec(100 + 40 * n));
      TcpConnection* c = sys.stack(n).tcp.connect(5000, ip_of_node(3), 80);
      ASSERT_TRUE(sys.stack(n).tcp.wait_established(c));
      core::Mailbox& s = sys.runtime(n).create_mailbox("tx");
      sys.stack(n).tcp.send(c, stage(s, sys.runtime(n), "from-node-" + std::to_string(n)));
    });
  }
  sys.net().run_until(sim::sec(5));
  EXPECT_EQ(got.size(), 3u);
  for (int n = 0; n < 3; ++n) EXPECT_EQ(got.count("from-node-" + std::to_string(n)), 1u);
}

TEST(TcpListener, AcceptBlocksUntilAClientArrives) {
  net::NectarSystem sys(2);
  sim::SimTime accepted_at = -1;
  sys.runtime(1).fork_app("server", [&] {
    TcpListener* l = sys.stack(1).tcp.open_listener(80);
    TcpConnection* c = sys.stack(1).tcp.accept(l);
    ASSERT_NE(c, nullptr);
    accepted_at = sys.engine().now();
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_until(sim::msec(3));
    TcpConnection* c = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    sys.stack(0).tcp.wait_established(c);
  });
  sys.net().run_until(sim::sec(2));
  EXPECT_GE(accepted_at, sim::msec(3));
}

TEST(TcpListener, ClosedListenerRefusesWithRst) {
  net::NectarSystem sys(2);
  TcpListener* l = nullptr;
  sys.runtime(1).fork_app("server", [&] {
    l = sys.stack(1).tcp.open_listener(80);
    sys.stack(1).tcp.close_listener(l);
  });
  TcpConnection* client = nullptr;
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::msec(1));
    client = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    sys.stack(0).tcp.wait_established(client);
  });
  sys.net().run_until(sim::sec(2));
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->reset());
  EXPECT_TRUE(client->closed());
}

TEST(TcpListener, CloseListenerReleasesBlockedAccept) {
  net::NectarSystem sys(2);
  bool returned_null = false;
  TcpListener* l = nullptr;
  sys.runtime(1).fork_app("server", [&] {
    l = sys.stack(1).tcp.open_listener(80);
    TcpConnection* c = sys.stack(1).tcp.accept(l);  // nobody will connect
    returned_null = (c == nullptr);
  });
  sys.runtime(1).fork_app("closer", [&] {
    sys.runtime(1).cpu().sleep_for(sim::msec(2));
    sys.stack(1).tcp.close_listener(l);
  });
  sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(returned_null);
}

TEST(TcpListener, SequentialAcceptsReuseThePort) {
  net::NectarSystem sys(3);
  std::vector<std::string> got;
  sys.runtime(2).fork_app("server", [&] {
    TcpListener* l = sys.stack(2).tcp.open_listener(80);
    for (int i = 0; i < 2; ++i) {
      TcpConnection* c = sys.stack(2).tcp.accept(l);
      ASSERT_NE(c, nullptr);
      core::Message m = c->receive_mailbox().begin_get();
      got.push_back(read_bytes(sys.runtime(2), m));
      c->receive_mailbox().end_get(m);
      sys.stack(2).tcp.close(c);
    }
    EXPECT_EQ(l->accepted, 2u);
  });
  for (int n = 0; n < 2; ++n) {
    sys.runtime(n).fork_app("client", [&sys, n] {
      sys.runtime(n).cpu().sleep_for(sim::msec(1 + 20 * n));  // strictly sequential
      TcpConnection* c = sys.stack(n).tcp.connect(5000, ip_of_node(2), 80);
      ASSERT_TRUE(sys.stack(n).tcp.wait_established(c));
      core::Mailbox& s = sys.runtime(n).create_mailbox("tx");
      sys.stack(n).tcp.send(c, stage(s, sys.runtime(n), "client" + std::to_string(n)));
      sys.stack(n).tcp.wait_drained(c);
      sys.stack(n).tcp.close(c);
    });
  }
  sys.net().run_until(sim::sec(5));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "client0");
  EXPECT_EQ(got[1], "client1");
}

}  // namespace
}  // namespace nectar::proto
