#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "host/process.hpp"

namespace nectar::host {

/// The comparison interface of §6.3: a conventional 10 Mbit/s on-board
/// Ethernet. It bypasses the VME bus entirely (the NIC sits on the CPU
/// board), which is why the paper's hosts did *better* over Ethernet
/// (7.2 Mbit/s) than over Nectar-as-network-device (6.4 Mbit/s).
class EthernetSegment {
 public:
  static constexpr std::size_t kMtu = 1500;

  explicit EthernetSegment(sim::Engine& engine) : engine_(engine) {}

  class Nic {
   public:
    Nic(EthernetSegment& seg, Host& host, int station);

    int station() const { return station_; }
    Host& host() { return host_; }

    /// Transmit from a host process: host protocol stack + copy charged,
    /// then the frame serializes onto the shared segment.
    void send(int dst_station, std::span<const std::uint8_t> payload);

    /// Deliver received frames to `handler` in a host process context.
    void start_receiver(std::function<void(std::vector<std::uint8_t>)> handler);

    std::uint64_t frames_sent() const { return tx_; }
    std::uint64_t frames_received() const { return rx_; }

   private:
    friend class EthernetSegment;
    void deliver(std::vector<std::uint8_t> frame);

    EthernetSegment& seg_;
    Host& host_;
    int station_;
    std::deque<std::vector<std::uint8_t>> rx_queue_;
    core::Thread* rx_waiter_ = nullptr;
    std::uint64_t tx_ = 0;
    std::uint64_t rx_ = 0;
  };

  Nic& attach(Host& host);

 private:
  friend class Nic;
  void transmit(int dst_station, std::vector<std::uint8_t> frame);

  sim::Engine& engine_;
  std::vector<std::unique_ptr<Nic>> nics_;
  sim::SimTime busy_until_ = 0;  // shared medium
};

}  // namespace nectar::host
