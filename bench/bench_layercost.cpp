// Layer cost attribution (paper §6.2): where the CAB CPU's cycles go, per
// protocol layer, measured with the cycle-attribution profiler
// (obs::Profiler + obs::CostScope instrumentation across proto/ and core/).
//
// Runs a bulk UDP and a bulk TCP transfer at a small and a large message
// size, then reports the per-domain busy-time split. The large-message
// columns reproduce the paper's central claim: once messages are big, the
// per-byte work — software checksums plus data copies (reassembly) — is
// what dominates, while the fixed per-packet costs (mailbox ops, datalink,
// header processing) dominate small messages. "Mostly due to the cost of
// doing TCP checksums in software" (§6.2).
//
// The profiler charges no simulated time, so these numbers are the same
// cycles every other bench measures — just attributed.

#include <map>

#include "common.hpp"

namespace nectar::bench {
namespace {

constexpr int kPort = 9000;

// Ethernet-class wire MTU (the Nectar default is 9 KB, which would let an
// 8 KB datagram through whole): large UDP messages must fragment so the
// reassembly copy — the other per-byte cost besides checksums — shows up.
constexpr std::size_t kMtu = 1500;

struct PhaseResult {
  std::map<std::string, sim::SimTime> domains;  // "tcp/checksum" -> ns
  sim::SimTime total = 0;                       // total attributed ns
  std::string folded;                           // full folded-stack text
};

PhaseResult finish_phase(net::NectarSystem& sys) {
  PhaseResult r;
  r.domains = sys.profiler().domain_totals();
  r.total = sys.profiler().attributed_ns();
  r.folded = sys.profiler().folded();
  return r;
}

PhaseResult udp_phase(std::size_t size, int n) {
  net::NectarSystem sys(2, false, {}, kMtu);
  sys.profiler().set_enabled(true);
  core::Mailbox& rx = sys.runtime(1).create_mailbox("sink");
  sys.stack(1).udp.bind(kPort, &rx);
  sys.runtime(1).fork_app("server", [&] {
    for (;;) {
      core::Message m = rx.begin_get();
      rx.end_get(m);
    }
  });
  sys.runtime(0).fork_app("client", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < n; ++i) {
      core::Message m = scratch.begin_put(static_cast<std::uint32_t>(size));
      sys.stack(0).udp.send(kPort, proto::ip_of_node(1), kPort, m);
      // Pace the offered load so the receiver never sheds: this bench
      // attributes cycles, it does not measure saturation throughput.
      sys.runtime(0).cpu().sleep_for(sim::usec(500));
    }
  });
  sys.engine().run();
  return finish_phase(sys);
}

PhaseResult tcp_phase(std::size_t size, int n) {
  proto::TcpConfig cfg;
  cfg.software_checksum = true;
  net::NectarSystem sys(2, false, cfg, kMtu);
  sys.profiler().set_enabled(true);
  const std::uint64_t total = static_cast<std::uint64_t>(n) * size;
  sys.runtime(1).fork_app("server", [&] {
    proto::TcpConnection* c = sys.stack(1).tcp.listen(kPort);
    sys.stack(1).tcp.wait_established(c);
    std::uint64_t got = 0;
    while (got < total) {
      core::Message m = c->receive_mailbox().begin_get();
      got += m.len;
      c->receive_mailbox().end_get(m);
    }
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    proto::TcpConnection* c = sys.stack(0).tcp.connect(5000, proto::ip_of_node(1), kPort);
    sys.stack(0).tcp.wait_established(c);
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < n; ++i) {
      sys.stack(0).tcp.wait_send_window(c, 128 * 1024);
      core::Message m = scratch.begin_put(static_cast<std::uint32_t>(size));
      sys.stack(0).tcp.send(c, m);
    }
  });
  sys.engine().run();
  return finish_phase(sys);
}

/// Per-byte work: every checksum pass plus every data-copy/reassembly
/// domain. Everything else in the stack is per-packet.
bool is_byte_cost(const std::string& domain) {
  return domain.find("checksum") != std::string::npos ||
         domain.find("copy") != std::string::npos ||
         domain.find("reassembly") != std::string::npos;
}

void report_phase(obs::RunReport& report, const char* name, const PhaseResult& r) {
  sim::SimTime byte_cost = 0;
  for (const auto& [domain, ns] : r.domains) {
    report.add(std::string(name) + "." + domain, static_cast<double>(ns), "ns");
    if (is_byte_cost(domain)) byte_cost += ns;
  }
  double share = r.total > 0 ? static_cast<double>(byte_cost) / static_cast<double>(r.total) : 0.0;
  report.add(std::string(name) + ".total", static_cast<double>(r.total), "ns");
  report.add(std::string(name) + ".checksum_copy_share", share, "ratio");
}

void print_phase(const char* name, const PhaseResult& r) {
  std::printf("\n--- %s (total %.1f us attributed) ---\n", name,
              static_cast<double>(r.total) / 1000.0);
  sim::SimTime byte_cost = 0;
  for (const auto& [domain, ns] : r.domains) {
    std::printf("  %-24s %10.1f us  (%4.1f%%)\n", domain.c_str(),
                static_cast<double>(ns) / 1000.0,
                100.0 * static_cast<double>(ns) / static_cast<double>(r.total));
    if (is_byte_cost(domain)) byte_cost += ns;
  }
  std::printf("  %-24s %10.1f us  (%4.1f%%)\n", "[checksum+copy]",
              static_cast<double>(byte_cost) / 1000.0,
              100.0 * static_cast<double>(byte_cost) / static_cast<double>(r.total));
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Layer cost attribution: per-domain CPU cycles, UDP vs TCP (paper §6.2)");

  constexpr std::size_t kSmall = 64;
  constexpr std::size_t kLarge = 8192;  // fragments at kMtu into 6 IP fragments
  constexpr int kMessages = 32;

  PhaseResult udp_small = udp_phase(kSmall, kMessages);
  PhaseResult udp_large = udp_phase(kLarge, kMessages);
  PhaseResult tcp_small = tcp_phase(kSmall, kMessages);
  PhaseResult tcp_large = tcp_phase(kLarge, kMessages);

  print_phase("udp 64B", udp_small);
  print_phase("udp 8KB", udp_large);
  print_phase("tcp 64B", tcp_small);
  print_phase("tcp 8KB", tcp_large);

  std::printf(
      "\nFor 8 KB messages the per-byte domains (software checksum, reassembly\n"
      "copy) dominate the attributed cycles; at 64 bytes the fixed per-packet\n"
      "machinery (mailbox, datalink, header processing) does — the shape of\n"
      "the paper's §6.2 cost argument.\n");

  if (!opts.profile_path.empty()) {
    // --profile dumps the flamegraph-worthy phase: bulk TCP, large messages.
    std::FILE* f = std::fopen(opts.profile_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write profile to %s\n", opts.profile_path.c_str());
      return 1;
    }
    std::fwrite(tcp_large.folded.data(), 1, tcp_large.folded.size(), f);
    std::fclose(f);
    std::printf("wrote %s (tcp 8KB phase)\n", opts.profile_path.c_str());
  }

  nectar::obs::RunReport report("layercost");
  report.param("messages", static_cast<std::int64_t>(kMessages));
  report.param("small_bytes", static_cast<std::int64_t>(kSmall));
  report.param("large_bytes", static_cast<std::int64_t>(kLarge));
  report_phase(report, "udp_small", udp_small);
  report_phase(report, "udp_large", udp_large);
  report_phase(report, "tcp_small", tcp_small);
  report_phase(report, "tcp_large", tcp_large);
  finish_report(opts, report);
  return 0;
}
