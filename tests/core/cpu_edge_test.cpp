// Edge cases in the execution substrate: races between timers, wakeups,
// joins, and interrupt masking that the runtime's primitives must survive.

#include <gtest/gtest.h>

#include "core/cpu.hpp"
#include "core/priorities.hpp"
#include "core/thread.hpp"

namespace nectar::core {
namespace {

TEST(CpuEdge, MultipleJoinersAllWake) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  int woken = 0;
  Thread* worker = cpu.fork("worker", kAppPriority, [&] { cpu.charge(sim::usec(100)); });
  for (int i = 0; i < 4; ++i) {
    cpu.fork("joiner", kSystemPriority, [&] {
      cpu.join(worker);
      ++woken;
    });
  }
  e.run();
  EXPECT_EQ(woken, 4);
}

TEST(CpuEdge, StaleSleepTimerDoesNotWakeLaterBlock) {
  // A thread sleeps, is woken EARLY by an external wake, then blocks on
  // something else; the original sleep timer firing later must not produce
  // a spurious wakeup.
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool second_wait_done = false;
  sim::SimTime second_wake_time = -1;
  Thread* t = cpu.fork("sleeper", kSystemPriority, [&] {
    cpu.sleep_until(sim::msec(10));  // would fire at 10 ms
    // Woken early (below, at 1 ms). Now block again.
    cpu.block();
    second_wake_time = e.now();
    second_wait_done = true;
  });
  e.schedule_at(sim::msec(1), [&] { cpu.wake(t); });
  e.schedule_at(sim::msec(20), [&] { cpu.wake(t); });  // the legitimate waker
  e.run();
  EXPECT_TRUE(second_wait_done);
  // The stale 10 ms sleep timer must NOT have ended the second block.
  EXPECT_GE(second_wake_time, sim::msec(20));
}

TEST(CpuEdge, TimerCancelAfterQueueingIsHarmless) {
  // Cancel a timer at the exact time it fires: whichever side wins, the
  // system must not crash, and the handler runs at most once.
  sim::Engine e;
  Cpu cpu(e, "cpu");
  int fired = 0;
  auto id = cpu.set_timer(sim::usec(100), [&] { ++fired; });
  e.schedule_at(sim::usec(100), [&] { cpu.cancel_timer(id); });
  e.run();
  EXPECT_LE(fired, 1);
}

TEST(CpuEdge, InterruptsDuringContextSwitchAreDeferredNotLost) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool handled = false;
  cpu.fork("a", kAppPriority, [&] { cpu.charge(sim::usec(50)); });
  cpu.fork("b", kAppPriority, [&] { cpu.charge(sim::usec(50)); });
  // Post mid-way through the first context switch (switch cost 20 us).
  e.schedule_at(sim::usec(5), [&] { cpu.post_interrupt([&] { handled = true; }); });
  e.run();
  EXPECT_TRUE(handled);
}

TEST(CpuEdge, NestedInterruptMaskDepth) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::vector<int> order;
  cpu.fork("t", kSystemPriority, [&] {
    cpu.disable_interrupts();
    cpu.disable_interrupts();
    cpu.post_interrupt([&] { order.push_back(9); });
    cpu.enable_interrupts();  // still masked (depth 1)
    cpu.charge(sim::usec(10));
    order.push_back(1);
    cpu.enable_interrupts();  // now deliverable
    cpu.charge(sim::usec(1));
    order.push_back(2);
  });
  e.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 9);  // delivered only after full unmask
  EXPECT_EQ(order[2], 2);
}

TEST(CpuEdge, ManyInterruptsDrainInOrder) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    cpu.post_interrupt([&order, i] { order.push_back(i); });
  }
  e.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(CpuEdge, WakeOnRunningThreadIsNoOp) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  int laps = 0;
  Thread* t = cpu.fork("t", kSystemPriority, [&] {
    cpu.charge(sim::usec(10));
    ++laps;
    cpu.block();
    ++laps;
  });
  // Wake while it is RUNNING (harmless), then wake for real once blocked.
  e.schedule_at(sim::usec(25), [&] { cpu.wake(t); });
  e.schedule_at(sim::msec(1), [&] { cpu.wake(t); });
  e.run();
  EXPECT_EQ(laps, 2);
}

TEST(CpuEdge, YieldStormMakesProgressFairly) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  constexpr int kThreads = 5;
  constexpr int kLaps = 20;
  std::vector<int> finish_order;
  for (int i = 0; i < kThreads; ++i) {
    cpu.fork("y" + std::to_string(i), kAppPriority, [&, i] {
      for (int r = 0; r < kLaps; ++r) {
        cpu.charge(sim::usec(1));
        cpu.yield();
      }
      finish_order.push_back(i);
    });
  }
  e.run();
  ASSERT_EQ(finish_order.size(), static_cast<std::size_t>(kThreads));
  // Round-robin fairness: the threads finish in fork order.
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(finish_order[static_cast<std::size_t>(i)], i);
}

TEST(CpuEdge, ChargeZeroOrNegativeIsFree) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  sim::SimTime t_after = -1;
  cpu.fork("t", kSystemPriority, [&] {
    sim::SimTime t0 = e.now();
    cpu.charge(0);
    cpu.charge(-5);
    t_after = e.now() - t0;
  });
  e.run();
  EXPECT_EQ(t_after, 0);
}

TEST(CpuEdge, ThreadForkedFromInterruptRuns) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool ran = false;
  cpu.post_interrupt([&] {
    cpu.fork("spawned", kSystemPriority, [&] { ran = true; });
  });
  e.run();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace nectar::core
