#include "obs/report.hpp"

#include <fstream>

namespace nectar::obs {

RunReport::RunReport(std::string bench) : bench_(std::move(bench)) {}

void RunReport::param(const std::string& key, std::int64_t value) { params_.set(key, value); }

void RunReport::param(const std::string& key, const std::string& value) {
  params_.set(key, value);
}

void RunReport::add(const std::string& name, double value, const std::string& unit) {
  json::Value r = json::Value::object();
  r.set("name", name);
  r.set("value", value);
  r.set("unit", unit);
  results_.push(std::move(r));
}

void RunReport::attach_metrics(const Snapshot& snap) {
  metrics_ = json::Value::parse(snap.to_json(-1));
}

void RunReport::extra(const std::string& key, json::Value value) {
  extras_.set(key, std::move(value));
}

std::string RunReport::to_json_string() const {
  json::Value doc = json::Value::object();
  doc.set("schema", "nectar-bench-report");
  doc.set("version", std::int64_t{kVersion});
  doc.set("bench", bench_);
  doc.set("clock", "simulated");
  doc.set("params", params_);
  doc.set("results", results_);
  if (!metrics_.is_null()) doc.set("metrics", metrics_);
  for (const auto& [key, value] : extras_.members()) doc.set(key, value);
  return doc.dump(2) + "\n";
}

bool RunReport::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << to_json_string();
  return static_cast<bool>(f);
}

}  // namespace nectar::obs
