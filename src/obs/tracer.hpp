#pragma once

// Structured tracing on the simulated clock.
//
// A Tracer is the per-Engine event sink the whole system reports into:
// typed events (span begin/end, instant, counter sample) attributed to
// *tracks*. A track is one timeline row — "node0 / cab.cpu", "node0 / vme",
// "node1 / wire" — mapped onto the Chrome trace-event pid/tid plane so a
// host→CAB→wire→CAB→host exchange renders as parallel swimlanes in
// chrome://tracing or ui.perfetto.dev.
//
// Cost model: disabled (the default) every hook is a pointer/flag check;
// enabled, one vector push per event, *zero* simulated time either way —
// tracing never perturbs measured results. Builds that want the hooks gone
// entirely compile with -DNECTAR_TRACE_DISABLED (see NECTAR_TRACE below).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

// Wrap instrumentation statements so they can be compiled out wholesale.
#if defined(NECTAR_TRACE_DISABLED)
#define NECTAR_TRACE(stmt) \
  do {                     \
  } while (0)
#else
#define NECTAR_TRACE(stmt) \
  do {                     \
    stmt;                  \
  } while (0)
#endif

namespace nectar::obs {

class Tracer {
 public:
  enum class EventType { Begin, End, Instant, Counter };

  struct Event {
    EventType type;
    int track;
    sim::SimTime ts;
    std::string name;
    std::int64_t value = 0;  // Counter events only
  };

  struct Track {
    std::string process;  ///< timeline group (maps to Chrome pid)
    std::string thread;   ///< row within the group (maps to Chrome tid)
    int pid;
    int tid;
  };

  explicit Tracer(sim::Engine& engine) : engine_(engine) {}
  /// Writes the Chrome trace to the autoflush path, if one is set (RAII:
  /// the artifact survives a run torn down mid-transfer).
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Export to `path` when this tracer is destroyed. An earlier explicit
  /// write_chrome to the same path just gets rewritten with identical bytes.
  void set_autoflush(std::string path) { autoflush_ = std::move(path); }
  const std::string& autoflush_path() const { return autoflush_; }

  /// Register (or look up) the track for (process, thread). Ids are assigned
  /// in registration order, so identical runs get identical pid/tid layouts.
  int track(const std::string& process, const std::string& thread);
  const std::vector<Track>& tracks() const { return tracks_; }

  // --- emission (no-ops while disabled) -----------------------------------------
  // The *_at variants take an explicit timestamp for hardware models that
  // know an interval's bounds up front (e.g. a VME bus grant computed as
  // [start, completion] before the simulated clock reaches either).

  void begin(int track, std::string name) { begin_at(track, std::move(name), engine_.now()); }
  void begin_at(int track, std::string name, sim::SimTime ts) {
    push(EventType::Begin, track, std::move(name), ts, 0);
  }
  void end(int track, std::string name) { end_at(track, std::move(name), engine_.now()); }
  void end_at(int track, std::string name, sim::SimTime ts) {
    push(EventType::End, track, std::move(name), ts, 0);
  }
  void instant(int track, std::string name) { instant_at(track, std::move(name), engine_.now()); }
  void instant_at(int track, std::string name, sim::SimTime ts) {
    push(EventType::Instant, track, std::move(name), ts, 0);
  }
  void counter(int track, std::string name, std::int64_t value) {
    push(EventType::Counter, track, std::move(name), engine_.now(), value);
  }

  // --- inspection ------------------------------------------------------------------

  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// First event with this name, or nullptr.
  const Event* find(std::string_view name) const;

  // --- export ----------------------------------------------------------------------

  /// Chrome trace-event JSON ("JSON object format" with a traceEvents
  /// array): loads in chrome://tracing and ui.perfetto.dev. Timestamps are
  /// microseconds with nanosecond fraction; output is byte-deterministic.
  void export_chrome(std::ostream& os) const;
  std::string chrome_json() const;
  /// Returns false (and writes nothing else) if the file cannot be opened.
  bool write_chrome(const std::string& path) const;

 private:
  void push(EventType type, int track, std::string name, sim::SimTime ts, std::int64_t value) {
    if (!enabled_) return;
    events_.push_back(Event{type, track, ts, std::move(name), value});
  }

  sim::Engine& engine_;
  bool enabled_ = false;
  std::string autoflush_;
  std::vector<Track> tracks_;
  std::map<std::pair<std::string, std::string>, int> track_ids_;
  std::map<std::string, int> pids_;
  std::vector<Event> events_;
};

/// Guard used at instrumentation sites: `if (tracing(t)) t->instant(...)`.
inline bool tracing(const Tracer* t) { return t != nullptr && t->enabled(); }

}  // namespace nectar::obs
