#pragma once

#include <cstdint>
#include <span>

namespace nectar::hw {

/// CRC-32 (IEEE 802.3 polynomial), table-driven.
///
/// The CAB computes cyclic redundancy checksums for incoming and outgoing
/// data in hardware (paper §2.2), so the runtime charges *zero CPU time* for
/// it — but the simulation really computes it over the real bytes, which is
/// what lets the fault-injection tests observe corrupted frames being dropped
/// and retransmitted.
class Crc32 {
 public:
  static constexpr std::uint32_t kInit = 0xFFFFFFFFu;

  /// One-shot CRC of a buffer.
  static std::uint32_t compute(std::span<const std::uint8_t> data);

  /// Streaming interface (the hardware checksums data as it moves through
  /// the FIFOs).
  void update(std::span<const std::uint8_t> data);
  std::uint32_t value() const;
  void reset();

 private:
  std::uint32_t state_ = kInit;
};

}  // namespace nectar::hw
