#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/cpu.hpp"
#include "core/heap.hpp"
#include "core/host_signal.hpp"
#include "core/mailbox.hpp"
#include "core/priorities.hpp"
#include "core/sync.hpp"
#include "hw/cab.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/trace.hpp"

namespace nectar::core {

/// The CAB runtime system (paper §3): boots on a CabBoard and provides the
/// facilities transport protocols and CAB-resident applications are built
/// from — preemptive priority threads, the buffer heap, mailboxes with
/// network-wide addresses, syncs, and the host-CAB signaling layer.
class CabRuntime {
 public:
  /// `metrics` and `tracer` are the network-wide observability sinks; a
  /// standalone runtime (nullptr metrics) falls back to a private registry so
  /// register_metrics callers always have somewhere to report.
  explicit CabRuntime(hw::CabBoard& board, sim::TraceRecorder* trace = nullptr,
                      obs::MetricsRegistry* metrics = nullptr, obs::Tracer* tracer = nullptr);

  CabRuntime(const CabRuntime&) = delete;
  CabRuntime& operator=(const CabRuntime&) = delete;

  hw::CabBoard& board() { return board_; }
  Cpu& cpu() { return cpu_; }
  BufferHeap& heap() { return heap_; }
  HostSignaling& signals() { return signals_; }
  SyncPool& cab_syncs() { return cab_syncs_; }
  SyncPool& host_syncs() { return host_syncs_; }
  sim::Engine& engine() { return board_.engine(); }
  int node_id() const { return board_.node_id(); }

  // --- threads ---------------------------------------------------------------

  Thread* fork_system(std::string name, std::function<void()> body) {
    return cpu_.fork(std::move(name), kSystemPriority, std::move(body));
  }
  Thread* fork_app(std::string name, std::function<void()> body) {
    return cpu_.fork(std::move(name), kAppPriority, std::move(body));
  }

  // --- mailboxes ---------------------------------------------------------------

  /// Create a mailbox with the next network-wide address on this CAB.
  Mailbox& create_mailbox(std::string name);
  /// Look up a local mailbox by its per-CAB index (transport protocols
  /// deliver remote messages through this). nullptr if unknown.
  Mailbox* find_mailbox(std::uint32_t index);
  std::size_t mailbox_count() const { return mailboxes_.size(); }

  // --- datalink hook --------------------------------------------------------------

  /// Install the handler that runs (in interrupt context) when the input
  /// FIFO goes non-empty — the start-of-packet interrupt (§3.1, §4.1).
  void set_packet_handler(std::function<void()> fn) { packet_handler_ = std::move(fn); }

  // --- observability ----------------------------------------------------------------

  sim::TraceRecorder* trace() { return trace_; }
  void trace_mark(const char* label) {
    if (trace_ != nullptr) trace_->mark(label);
    // Mirror legacy marks onto this CAB's CPU track so Figure-6 style
    // breakdown points appear on the Chrome timeline unchanged.
    NECTAR_TRACE(if (obs::tracing(cpu_.tracer())) cpu_.tracer()->instant(cpu_.trace_track(), label));
  }

  /// The registry this node reports into (network-wide or the private
  /// fallback).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  obs::Tracer* tracer() { return tracer_; }

 private:
  hw::CabBoard& board_;
  Cpu cpu_;
  BufferHeap heap_;
  HostSignaling signals_;
  SyncPool cab_syncs_;
  SyncPool host_syncs_;
  sim::TraceRecorder* trace_;

  // Declared before metrics_reg_ so probes unhook before the fallback
  // registry (if used) is destroyed.
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;

  std::map<std::uint32_t, std::unique_ptr<Mailbox>> mailboxes_;
  std::uint32_t next_mailbox_ = 1;
  std::function<void()> packet_handler_;

  // Last member: its probes read the members above, so it must release first.
  obs::Registration metrics_reg_;
};

}  // namespace nectar::core
