#include "obs/tracer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/json.hpp"

namespace nectar::obs {

Tracer::~Tracer() {
  if (!autoflush_.empty()) write_chrome(autoflush_);
}

int Tracer::track(const std::string& process, const std::string& thread) {
  auto it = track_ids_.find({process, thread});
  if (it != track_ids_.end()) return it->second;

  auto [pit, inserted] = pids_.try_emplace(process, static_cast<int>(pids_.size()) + 1);
  (void)inserted;
  int tid = 1;
  for (const Track& t : tracks_) {
    if (t.process == process) ++tid;
  }
  int id = static_cast<int>(tracks_.size());
  tracks_.push_back(Track{process, thread, pit->second, tid});
  track_ids_.emplace(std::make_pair(process, thread), id);
  return id;
}

const Tracer::Event* Tracer::find(std::string_view name) const {
  for (const Event& e : events_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

namespace {
/// Simulated ns -> trace-event microseconds, with the nanosecond kept as a
/// fixed 3-digit fraction so output is byte-stable.
std::string chrome_ts(sim::SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000 < 0 ? -(ns % 1000) : ns % 1000));
  return buf;
}
}  // namespace

void Tracer::export_chrome(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata: name the pid/tid plane after the registered tracks.
  for (const auto& [process, pid] : pids_) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":0,\"name\":\"process_name\",\"args\":{"
       << "\"name\":\"" << json::escape(process) << "\"}}";
  }
  for (const Track& t : tracks_) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << t.pid << ",\"tid\":" << t.tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json::escape(t.thread) << "\"}}";
  }

  for (const Event& e : events_) {
    const Track& t = tracks_.at(static_cast<std::size_t>(e.track));
    sep();
    os << "{\"ph\":\"";
    switch (e.type) {
      case EventType::Begin: os << "B"; break;
      case EventType::End: os << "E"; break;
      case EventType::Instant: os << "i"; break;
      case EventType::Counter: os << "C"; break;
    }
    os << "\",\"pid\":" << t.pid << ",\"tid\":" << t.tid << ",\"ts\":" << chrome_ts(e.ts)
       << ",\"name\":\"" << json::escape(e.name) << "\",\"cat\":\"sim\"";
    if (e.type == EventType::Instant) os << ",\"s\":\"t\"";
    if (e.type == EventType::Counter) os << ",\"args\":{\"value\":" << e.value << "}";
    os << "}";
  }

  // A run can end with spans still open — a scenario hits its duration
  // horizon while server threads are scheduled in. Close them LIFO at the
  // last recorded timestamp so strict viewers see balanced B/E pairs.
  std::map<int, std::vector<const Event*>> open;
  sim::SimTime last_ts = 0;
  for (const Event& e : events_) {
    last_ts = std::max(last_ts, e.ts);
    if (e.type == EventType::Begin) {
      open[e.track].push_back(&e);
    } else if (e.type == EventType::End) {
      auto it = open.find(e.track);
      if (it != open.end() && !it->second.empty()) it->second.pop_back();
    }
  }
  for (const auto& [track, stack] : open) {
    const Track& t = tracks_.at(static_cast<std::size_t>(track));
    for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
      sep();
      os << "{\"ph\":\"E\",\"pid\":" << t.pid << ",\"tid\":" << t.tid
         << ",\"ts\":" << chrome_ts(last_ts) << ",\"name\":\"" << json::escape((*rit)->name)
         << "\",\"cat\":\"sim\"}";
    }
  }
  os << "\n]}\n";
}

std::string Tracer::chrome_json() const {
  std::ostringstream os;
  export_chrome(os);
  return os.str();
}

bool Tracer::write_chrome(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  export_chrome(f);
  return static_cast<bool>(f);
}

}  // namespace nectar::obs
