#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace nectar::sim {

/// Cooperative green thread (ucontext-based).
///
/// Fibers are the execution substrate for simulated CAB threads, interrupt
/// contexts, and host processes. Each fiber belongs to exactly one OS
/// thread — under a sharded simulation that is its shard's worker thread,
/// which owns all of the shard's fibers via thread-local bookkeeping: a
/// fiber runs until it calls `suspend()` (directly or via a blocking
/// runtime primitive), at which point control returns to whoever called
/// `resume()` — always the event engine's main context on the same thread.
///
/// Under ThreadSanitizer the stack switches are annotated with TSan's fiber
/// API so cross-shard race detection keeps working instead of false-alarming
/// on every swapcontext.
class Fiber {
 public:
  /// Create a fiber that will run `body` when first resumed.
  explicit Fiber(std::function<void()> body, std::string name = "fiber",
                 std::size_t stack_size = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the main context into this fiber. Must not be called from
  /// inside another fiber. Returns when the fiber suspends or finishes.
  void resume();

  /// Called from inside a fiber: switch back to the main context.
  static void suspend();

  /// The fiber currently executing, or nullptr when on the main context.
  static Fiber* current();

  bool finished() const { return finished_; }
  bool started() const { return started_; }
  const std::string& name() const { return name_; }

 private:
  static void trampoline();

  std::function<void()> body_;
  std::string name_;
  std::vector<unsigned char> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  bool started_ = false;
  bool finished_ = false;
  void* tsan_fiber_ = nullptr;  // TSan fiber handle (TSan builds only)
};

}  // namespace nectar::sim
