// Figure 6 (paper §6.1): breakdown of the one-way host-to-host latency for a
// 64-byte Nectar datagram. The paper reports ~163 us total, split roughly
// 40% host-CAB interface (sender + receiver), 40% CAB-to-CAB, and 20% host
// message creation/reading, with stage costs like begin_put = 8 us,
// datalink = 18 us, "pass message" = 10 us, end_get = 20 us.

#include "common.hpp"

namespace nectar::bench {
namespace {

constexpr std::size_t kMsgSize = 64;

struct Breakdown {
  double host_create;      // building the message (begin_put + fill)
  double iface_sender;     // end_put + signal + CAB wakeup + protocol send entry
  double cab_to_cab;       // datagram protocol + datalink + wire + receive path
  double iface_receiver;   // poll detection + begin_get
  double host_read;        // reading the data + end_get
  double total;
};

Breakdown measure(const BenchOptions& opts, obs::Snapshot* metrics_out) {
  net::NectarSystem sys(2, /*with_vme=*/true);
  host::HostNode h0(sys, 0), h1(sys, 1);
  sim::TraceRecorder& tr = sys.net().trace();
  if (!opts.trace_path.empty()) sys.tracer().set_enabled(true);
  start_profile(opts, sys.profiler());

  core::MailboxAddr svc_addr{};
  bool ready = false;
  bool done = false;

  // Receiver host process: polls for the message (§6.1: "the host process is
  // polling for receipt of the message, so no interrupt or context switch is
  // required" on the receiving side).
  h1.host.run_process("receiver", [&] {
    auto hm = h1.nin.create_mailbox("sink");
    svc_addr = hm.mb->address();
    ready = true;
    std::vector<std::uint8_t> buf(kMsgSize);
    core::Message m = h1.nin.begin_get_poll(hm);
    tr.mark("host.got-message");
    h1.nin.read_message(m, buf);
    tr.mark("host.data-read");
    h1.nin.end_get(hm, m);
    tr.mark("host.read-done");
    done = true;
  });
  sys.net().run_until(sim::msec(1));

  // Sender host process.
  h0.host.run_process("sender", [&] {
    host::HostNectarPort port(h0.nin, h0.sockets, "src");
    auto data = pattern(kMsgSize);
    tr.mark("host.start");
    // HostNectarPort::send_datagram = begin_put + write + end_put; we want
    // marks between the phases, so inline the same steps here.
    nectarine::HostNectarine::HostMailbox send{&h0.sockets.send_mailbox(), 0, 0};
    core::Message req = h0.nin.begin_put(send, static_cast<std::uint32_t>(16 + data.size()));
    std::vector<std::uint8_t> hdr(16);
    proto::put32n(hdr, 0, host::SocketServer::kViaDatagram);
    proto::put32n(hdr, 4, static_cast<std::uint32_t>(svc_addr.node));
    proto::put32n(hdr, 8, svc_addr.index);
    proto::put32n(hdr, 12, port.address().index);
    tr.mark("host.msg-built");  // descriptor ready; data still to cross the bus
    h0.nin.write_message(req, hdr);
    h0.nin.driver().copy_to_cab(data, req.data + 16);
    tr.mark("host.data-copied");
    h0.nin.end_put(send, req);
    tr.mark("host.end_put-done");
  });
  sys.net().run_until(sim::sec(1));
  if (!done) throw std::runtime_error("fig6: message never delivered");

  Breakdown b{};
  sim::SimTime t0 = tr.mark_time("host.start");
  sim::SimTime built = tr.mark_time("host.msg-built");
  sim::SimTime copied = tr.mark_time("host.data-copied");
  sim::SimTime posted = tr.mark_time("host.end_put-done");
  sim::SimTime dg_deliver = tr.mark_time("datagram.deliver");
  sim::SimTime got = tr.mark_time("host.got-message");
  sim::SimTime data_read = tr.mark_time("host.data-read");
  sim::SimTime read_done = tr.mark_time("host.read-done");

  // Attribution: everything between the host's End_Put returning and the
  // message landing in the destination mailbox on the far CAB is CAB work +
  // wire (the "CAB-to-CAB latency" of §6.1); the interface buckets are the
  // host-side VME manipulation plus the receiver's poll/Begin_Get.
  b.host_create = sim::to_usec(built - t0);
  b.iface_sender = sim::to_usec(posted - built);  // VME data copy + end_put/signal
  b.cab_to_cab = sim::to_usec(dg_deliver - posted);
  b.iface_receiver = sim::to_usec(data_read - dg_deliver);  // poll + begin_get + VME copy
  b.host_read = sim::to_usec(read_done - data_read);
  (void)copied;
  (void)got;
  b.total = sim::to_usec(read_done - t0);
  finish_trace(opts.trace_path, sys.tracer());
  finish_profile(opts, sys.profiler());
  if (metrics_out != nullptr) *metrics_out = sys.metrics().snapshot();
  return b;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 6: one-way host-to-host datagram latency breakdown (64 bytes)");

  nectar::obs::Snapshot metrics;
  Breakdown b = measure(opts, &metrics);
  std::printf("%-46s %8.1f us\n", "host: create message (begin_put)", b.host_create);
  std::printf("%-46s %8.1f us\n", "host-CAB iface, sender (VME copy+end_put+signal)", b.iface_sender);
  std::printf("%-46s %8.1f us\n", "CAB-to-CAB (wakeup + protocol + wire + deliver)", b.cab_to_cab);
  std::printf("%-46s %8.1f us\n", "host-CAB iface, receiver (poll+begin_get+VME copy)", b.iface_receiver);
  std::printf("%-46s %8.1f us\n", "host: release message (end_get)", b.host_read);
  std::printf("%-46s %8.1f us   (paper: ~163 us)\n", "TOTAL one-way", b.total);

  double iface = b.iface_sender + b.iface_receiver;
  double host = b.host_create + b.host_read;
  std::printf("\nBuckets (paper: ~40%% interface / ~40%% CAB-to-CAB / ~20%% host):\n");
  std::printf("  host-CAB interface : %5.1f us  (%4.1f%%)\n", iface, 100 * iface / b.total);
  std::printf("  CAB-to-CAB         : %5.1f us  (%4.1f%%)\n", b.cab_to_cab,
              100 * b.cab_to_cab / b.total);
  std::printf("  host processing    : %5.1f us  (%4.1f%%)\n", host, 100 * host / b.total);

  nectar::obs::RunReport report("fig6-breakdown");
  report.param("message_bytes", static_cast<std::int64_t>(kMsgSize));
  report.add("host_create", b.host_create, "us");
  report.add("iface_sender", b.iface_sender, "us");
  report.add("cab_to_cab", b.cab_to_cab, "us");
  report.add("iface_receiver", b.iface_receiver, "us");
  report.add("host_read", b.host_read, "us");
  report.add("total_one_way", b.total, "us");
  report.attach_metrics(metrics);
  finish_report(opts, report);
  return 0;
}
