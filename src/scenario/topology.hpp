#pragma once

// Topology builders: stamp out multi-HUB meshes of CAB+host nodes on a
// net::Network from a small spec, instead of hand-wiring add_hub/add_cab
// calls. All three shapes compute and install source routes and re-key every
// link's fault-RNG streams under the scenario master seed, so a scenario is
// fully described by (spec, seed).

#include <cstdint>
#include <string>

#include "net/topology.hpp"

namespace nectar::scenario {

enum class TopologyKind {
  Star,     ///< N CABs on one HUB (N <= HUB ports; the common installation)
  DualHub,  ///< two HUBs, nodes split evenly, `trunks` parallel trunk pairs
  FatTree,  ///< 2-level: leaf HUBs with CABs, each leaf trunked to every spine
};

struct TopologySpec {
  TopologyKind kind = TopologyKind::Star;
  int nodes = 2;
  int hub_ports = 16;  ///< leaf/star HUB radix
  int trunks = 1;      ///< DualHub: parallel trunk fiber pairs between the HUBs
  int spines = 2;      ///< FatTree: number of spine HUBs (= trunks per leaf)
  bool with_vme = false;
  /// Flight time of inter-HUB trunk fibers. Under a sharded run the minimum
  /// over cross-shard trunks is the synchronization lookahead, so larger
  /// values mean fewer barriers; must be > 0 whenever shards > 1.
  sim::SimTime trunk_propagation = sim::costs::kLinkPropagation;
  /// Spread routes across equal-cost trunks (net::Network::set_route_spread):
  /// on a fat-tree, different node pairs transit different spines instead of
  /// all tie-breaking to spine 0. Off by default — first-trunk routes are
  /// baked into the committed BENCH_* reports.
  bool route_spread = false;

  static TopologyKind parse_kind(const std::string& name);  // "star" | "dual_hub" | "fat_tree"
};

/// How HUBs map to simulation shards ([parallel] INI section).
struct ParallelSpec {
  int shards = 1;  ///< worker threads / event queues; 1 = sequential engine
  /// "modulo": hub id % shards (interleaves leaves and spines).
  /// "block": contiguous leaf ranges per shard (keeps neighbor leaves
  /// together; spines spread round-robin). Identical for star/dual_hub.
  std::string partition = "modulo";

  static void validate_partition(const std::string& name);  // throws on typo
};

/// Build `spec` into `net` (which must be empty), install routes, and seed
/// every CAB out-link's fault streams from `master_seed`. `par` picks the
/// shard partition policy (`par.shards` must match the Network's shard
/// count). Returns the node count actually built (== spec.nodes). Throws
/// std::invalid_argument when the spec does not fit (e.g. Star with more
/// nodes than ports).
int build_topology(net::Network& net, const TopologySpec& spec, std::uint64_t master_seed,
                   const ParallelSpec& par = {});

}  // namespace nectar::scenario
