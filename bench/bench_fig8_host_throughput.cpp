// Figure 8 (paper §6.3): host-to-host throughput vs message size for TCP/IP
// and RMP through the protocol engine, plus the comparison points from the
// text: CAB-as-network-device mode (6.4 Mbit/s) and plain Ethernet
// (7.2 Mbit/s). Paper: the curves have the same shape as Fig. 7 "but they
// flatten earlier because the slow VME bus makes the transmission times more
// significant"; both protocols are limited by the ~30 Mbit/s VME bus, with
// TCP/IP peaking around 24 Mbit/s (RMP ~28).

#include "common.hpp"

#include "host/ethernet.hpp"
#include "host/netdev.hpp"

namespace nectar::bench {
namespace {

int messages_for(std::size_t size) {
  if (size <= 64) return 600;
  if (size <= 1024) return 300;
  return 150;
}

struct HostPair {
  net::NectarSystem sys{2, /*with_vme=*/true};
  host::HostNode h0{sys, 0};
  host::HostNode h1{sys, 1};
};

double host_rmp_throughput(std::size_t size) {
  HostPair p;
  const int n = messages_for(size);
  core::MailboxAddr dst{};
  bool ready = false;
  sim::SimTime t0 = -1, t1 = -1;
  p.h1.host.run_process("recv", [&] {
    host::HostNectarPort port(p.h1.nin, p.h1.sockets, "sink");
    dst = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(size);
    for (int i = 0; i < n; ++i) {
      port.recv(buf);
      if (i == 0) t0 = p.sys.engine().now();
    }
    t1 = p.sys.engine().now();
  });
  p.sys.net().run_until(sim::msec(1));
  if (!ready) return 0;
  p.h0.host.run_process("send", [&] {
    host::HostNectarPort port(p.h0.nin, p.h0.sockets, "src");
    auto data = pattern(size);
    for (int i = 0; i < n; ++i) {
      // Host-side pacing: poll the CAB's queue depth over the bus.
      while (p.sys.stack(0).rmp.queued_to(1) >= 8) {
        p.h0.host.cpu().charge_until(p.sys.net().vme(0)->programmed_access(1));
        p.h0.host.cpu().sleep_for(sim::usec(200));
      }
      port.send_reliable(dst, data);
    }
  });
  p.sys.net().run_until(sim::sec(60));
  if (t1 <= t0 || t0 < 0) return 0;
  return mbit_per_sec(static_cast<std::uint64_t>(n - 1) * size, t1 - t0);
}

double host_tcp_throughput(std::size_t size) {
  HostPair p;
  const int n = messages_for(size);
  const std::uint64_t total = static_cast<std::uint64_t>(n) * size;
  sim::SimTime t0 = -1, t1 = -1;
  bool listening = false;
  p.h1.host.run_process("server", [&] {
    host::HostTcpSocket s(p.h1.nin, p.h1.sockets, p.sys.stack(1).tcp);
    listening = true;
    if (!s.listen(80)) return;
    std::vector<std::uint8_t> buf(16 * 1024);
    std::uint64_t got = 0;
    while (got < total) {
      std::size_t r = s.recv(buf);
      if (r == 0) break;
      if (t0 < 0) t0 = p.sys.engine().now();
      got += r;
    }
    t1 = p.sys.engine().now();
  });
  p.sys.net().run_until(sim::msec(1));
  if (!listening) return 0;
  p.h0.host.run_process("client", [&] {
    p.h0.host.cpu().sleep_for(sim::usec(500));
    host::HostTcpSocket s(p.h0.nin, p.h0.sockets, p.sys.stack(0).tcp);
    if (!s.connect(5000, proto::ip_of_node(1), 80)) return;
    auto data = pattern(size);
    proto::TcpConnection* c = p.sys.stack(0).tcp.find(s.conn_id());
    for (int i = 0; i < n; ++i) {
      // Host-side pacing: poll the connection state over the bus.
      while (c->unacked_bytes() >= 128 * 1024) {
        p.h0.host.cpu().charge_until(p.sys.net().vme(0)->programmed_access(1));
        p.h0.host.cpu().sleep_for(sim::usec(200));
      }
      s.send(data);
    }
  });
  p.sys.net().run_until(sim::sec(60));
  if (t1 <= t0 || t0 < 0) return 0;
  return mbit_per_sec(total, t1 - t0);
}

/// §5.1/§6.3: CAB as a plain network device, protocols on the host.
double netdev_throughput() {
  HostPair p;
  host::NetDevice dev0(p.h0.nin, p.sys.net().datalink(0));
  host::NetDevice dev1(p.h1.nin, p.sys.net().datalink(1));
  const int n = 300;
  const std::size_t size = host::NetDevice::kMtu;
  sim::SimTime t0 = -1, t1 = -1;
  int got = 0;
  dev1.start_receiver([&](std::vector<std::uint8_t>) {
    if (t0 < 0) t0 = p.sys.engine().now();
    if (++got == n) t1 = p.sys.engine().now();
  });
  p.h0.host.run_process("send", [&] {
    auto data = pattern(size);
    for (int i = 0; i < n; ++i) dev0.send_packet(1, data);
  });
  p.sys.net().run_until(sim::sec(60));
  if (t1 <= t0 || t0 < 0) return 0;
  return mbit_per_sec(static_cast<std::uint64_t>(n - 1) * size, t1 - t0);
}

/// §6.3: the same hosts over their on-board Ethernet (no VME crossing).
double ethernet_throughput() {
  sim::Engine engine;
  host::Host ha(engine, "hostA"), hb(engine, "hostB");
  host::EthernetSegment ether(engine);
  auto& nic_a = ether.attach(ha);
  auto& nic_b = ether.attach(hb);
  const int n = 300;
  const std::size_t size = host::EthernetSegment::kMtu;
  sim::SimTime t0 = -1, t1 = -1;
  int got = 0;
  nic_b.start_receiver([&](std::vector<std::uint8_t>) {
    if (t0 < 0) t0 = engine.now();
    if (++got == n) t1 = engine.now();
  });
  ha.run_process("send", [&] {
    auto data = pattern(size);
    for (int i = 0; i < n; ++i) nic_a.send(1, data);
  });
  engine.run();
  if (t1 <= t0 || t0 < 0) return 0;
  return mbit_per_sec(static_cast<std::uint64_t>(n - 1) * size, t1 - t0);
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 8: host-to-host throughput vs message size (Mbit/s)");

  nectar::obs::RunReport report("fig8-host-throughput");
  std::printf("%8s %10s %10s\n", "size", "TCP/IP", "RMP");
  for (std::size_t size : {16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}) {
    double tcp = host_tcp_throughput(size);
    double rmp = host_rmp_throughput(size);
    std::printf("%8zu %10.2f %10.2f\n", size, tcp, rmp);
    std::string sz = std::to_string(size);
    report.add("tcp_" + sz, tcp, "Mbit/s");
    report.add("rmp_" + sz, rmp, "Mbit/s");
  }
  double netdev = netdev_throughput();
  double ether = ethernet_throughput();
  report.add("netdev_8192", netdev, "Mbit/s");
  report.add("ethernet_8192", ether, "Mbit/s");
  std::printf("\nComparison points (paper §6.3):\n");
  std::printf("  %-42s %6.2f Mbit/s   (paper: 6.4)\n", "CAB as network device (protocols on host)",
              netdev);
  std::printf("  %-42s %6.2f Mbit/s   (paper: 7.2)\n", "on-board Ethernet (bypasses VME)",
              ether);
  std::printf(
      "\nShape checks (paper): both curves flatten earlier than Fig. 7, capped\n"
      "by the ~30 Mbit/s VME bus; TCP/IP peaks around 24 Mbit/s, RMP ~28;\n"
      "netdev mode is ~4x slower than the protocol engine; Ethernet beats\n"
      "netdev mode because its interface bypasses the VME bus.\n");
  finish_report(opts, report);
  return 0;
}
