#include "core/scheduler.hpp"

#include <algorithm>

#include "core/thread.hpp"

namespace nectar::core {

void RunQueue::push(Thread* t) {
  levels_[-t->priority()].push_back(t);
  ++size_;
}

void RunQueue::push_front(Thread* t) {
  levels_[-t->priority()].push_front(t);
  ++size_;
}

Thread* RunQueue::pop_best() {
  while (!levels_.empty()) {
    auto it = levels_.begin();
    if (it->second.empty()) {
      levels_.erase(it);
      continue;
    }
    Thread* t = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) levels_.erase(it);
    --size_;
    return t;
  }
  return nullptr;
}

Thread* RunQueue::peek_best() const {
  for (const auto& [negprio, dq] : levels_) {
    if (!dq.empty()) return dq.front();
  }
  return nullptr;
}

bool RunQueue::remove(Thread* t) {
  auto it = levels_.find(-t->priority());
  if (it == levels_.end()) return false;
  auto pos = std::find(it->second.begin(), it->second.end(), t);
  if (pos == it->second.end()) return false;
  it->second.erase(pos);
  if (it->second.empty()) levels_.erase(it);
  --size_;
  return true;
}

}  // namespace nectar::core
