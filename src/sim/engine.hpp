#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace nectar::sim {

/// Deterministic discrete-event engine.
///
/// Single-threaded: events fire in (time, insertion-order) order, so every
/// run of a given scenario is bit-for-bit reproducible. All hardware models
/// and the CAB/host CPU schedulers are driven from this queue.
class Engine {
 public:
  using EventId = std::uint64_t;
  using Action = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Action fn);

  /// Schedule `fn` `delay` nanoseconds from now.
  EventId schedule_in(SimTime delay, Action fn) { return schedule_at(now_ + delay, std::move(fn)); }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Process a single event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue is empty.
  void run();

  /// Run until simulated time `t` (events at exactly `t` are processed).
  /// Returns true if the queue still has later events.
  bool run_until(SimTime t);

  /// Run until `pred()` becomes true or the queue drains.
  /// Returns true if the predicate was satisfied.
  bool run_while(const std::function<bool()>& pending);

  std::uint64_t events_processed() const { return processed_; }
  bool empty() const { return live_.empty(); }
  std::size_t pending_events() const { return live_.size(); }

 private:
  struct QueueEntry {
    SimTime time;
    EventId id;
    bool operator>(const QueueEntry& o) const {
      return time != o.time ? time > o.time : id > o.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::map<EventId, Action> live_;  // cancelled events are simply absent
};

}  // namespace nectar::sim
