#include "host/sockets.hpp"

#include <gtest/gtest.h>

#include <string>

#include "host/node.hpp"

namespace nectar::host {
namespace {

struct Fixture {
  net::NectarSystem sys{2, /*with_vme=*/true};
  HostNode h0{sys, 0};
  HostNode h1{sys, 1};

  std::vector<std::uint8_t> bytes(const std::string& s) { return {s.begin(), s.end()}; }
};

TEST(HostSockets, TcpStreamBetweenHosts) {
  Fixture f;
  std::string got;
  f.h1.host.run_process("server", [&] {
    HostTcpSocket s(f.h1.nin, f.h1.sockets, f.sys.stack(1).tcp);
    ASSERT_TRUE(s.listen(80));
    std::vector<std::uint8_t> buf(16 * 1024);
    std::size_t n = s.recv(buf);
    got.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
  });
  f.h0.host.run_process("client", [&] {
    f.h0.host.cpu().sleep_for(sim::usec(500));
    HostTcpSocket s(f.h0.nin, f.h0.sockets, f.sys.stack(0).tcp);
    ASSERT_TRUE(s.connect(5000, proto::ip_of_node(1), 80));
    auto data = f.bytes("host to host over the protocol engine");
    s.send(data);
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_EQ(got, "host to host over the protocol engine");
}

TEST(HostSockets, TcpBulkTransferIsByteExact) {
  Fixture f;
  std::string big;
  for (int i = 0; i < 50000; ++i) big.push_back(static_cast<char>('a' + i % 26));
  std::string got;
  f.h1.host.run_process("server", [&] {
    HostTcpSocket s(f.h1.nin, f.h1.sockets, f.sys.stack(1).tcp);
    ASSERT_TRUE(s.listen(80));
    std::vector<std::uint8_t> buf(16 * 1024);
    while (got.size() < big.size()) {
      std::size_t n = s.recv(buf);
      if (n == 0) break;
      got.append(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
  });
  f.h0.host.run_process("client", [&] {
    f.h0.host.cpu().sleep_for(sim::usec(500));
    HostTcpSocket s(f.h0.nin, f.h0.sockets, f.sys.stack(0).tcp);
    ASSERT_TRUE(s.connect(5000, proto::ip_of_node(1), 80));
    auto data = f.bytes(big);
    std::size_t off = 0;
    while (off < data.size()) {
      std::size_t chunk = std::min<std::size_t>(8192, data.size() - off);
      s.send(std::span<const std::uint8_t>(data).subspan(off, chunk));
      off += chunk;
    }
  });
  f.sys.net().run_until(sim::sec(10));
  EXPECT_EQ(got, big);
}

TEST(HostSockets, DatagramPortsDeliver) {
  Fixture f;
  std::string got_req;
  core::MailboxAddr server_addr{};
  bool addr_ready = false;
  f.h1.host.run_process("server", [&] {
    HostNectarPort port(f.h1.nin, f.h1.sockets, "dg-server");
    server_addr = port.address();
    addr_ready = true;
    std::vector<std::uint8_t> buf(256);
    std::size_t n = port.recv(buf);
    got_req.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
  });
  f.sys.net().run_until(sim::msec(1));
  ASSERT_TRUE(addr_ready);
  f.h0.host.run_process("client", [&] {
    HostNectarPort port(f.h0.nin, f.h0.sockets, "dg-client");
    auto data = f.bytes("ping!");
    port.send_datagram(server_addr, data);
  });
  f.sys.net().run_until(sim::sec(1));
  EXPECT_EQ(got_req, "ping!");
}

TEST(HostSockets, ReliablePortDeliversUnderLoss) {
  Fixture f;
  f.sys.net().cab(0).out_link().set_drop_rate(0.3, 41);
  std::string got;
  core::MailboxAddr server_addr{};
  bool ready = false;
  f.h1.host.run_process("server", [&] {
    HostNectarPort port(f.h1.nin, f.h1.sockets, "rmp-server");
    server_addr = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(8192);
    std::size_t n = port.recv(buf, /*poll=*/false);
    got.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
  });
  f.sys.net().run_until(sim::msec(1));
  ASSERT_TRUE(ready);
  f.h0.host.run_process("client", [&] {
    HostNectarPort port(f.h0.nin, f.h0.sockets, "rmp-client");
    std::vector<std::uint8_t> data(4096, 0x3C);
    port.send_reliable(server_addr, data);
  });
  f.sys.net().run_until(sim::sec(5));
  ASSERT_EQ(got.size(), 4096u);
  EXPECT_EQ(static_cast<std::uint8_t>(got[0]), 0x3C);
}

TEST(HostSockets, HostRttIsLanScale) {
  // Host-to-host datagram ping-pong: Table 1's headline configuration.
  Fixture f;
  core::MailboxAddr server_addr{};
  bool ready = false;
  f.h1.host.run_process("echo", [&] {
    HostNectarPort port(f.h1.nin, f.h1.sockets, "echo");
    server_addr = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(256);
    std::size_t n = port.recv(buf);
    // The first 8 bytes of the payload carry the reply address.
    core::MailboxAddr back{static_cast<std::int32_t>(proto::get32(buf, 0)), proto::get32(buf, 4)};
    port.send_datagram(back, std::span<const std::uint8_t>(buf).first(n));
  });
  f.sys.net().run_until(sim::msec(1));
  ASSERT_TRUE(ready);
  sim::SimTime rtt = -1;
  f.h0.host.run_process("client", [&] {
    HostNectarPort port(f.h0.nin, f.h0.sockets, "client");
    std::vector<std::uint8_t> msg(64, 0);
    proto::put32(msg, 0, static_cast<std::uint32_t>(port.address().node));
    proto::put32(msg, 4, port.address().index);
    sim::SimTime t0 = f.sys.engine().now();
    port.send_datagram(server_addr, msg);
    std::vector<std::uint8_t> buf(256);
    port.recv(buf);
    rtt = f.sys.engine().now() - t0;
  });
  f.sys.net().run_until(sim::sec(1));
  ASSERT_GT(rtt, 0);
  // Table 1: 325 us. Accept a generous band pre-calibration.
  EXPECT_GT(rtt, sim::usec(150));
  EXPECT_LT(rtt, sim::usec(700));
}

}  // namespace
}  // namespace nectar::host
