#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nectarine/marshal.hpp"
#include "nproto/reqresp.hpp"

namespace nectar::nectarine {

/// NFS-flavored remote file service (paper §7: "Our future work will include
/// ... porting important applications such as NFS and the X Window System to
/// Nectar").
///
/// A stateless file server running as an application task on a CAB: files
/// are named by handles after LOOKUP/CREATE; READ and WRITE address
/// (handle, offset, count) so any call can be retried — which composes with
/// the request-response transport's at-most-once delivery. Arguments and
/// results are marshaled with the presentation layer (§5.3), so this module
/// exercises marshaling, RPC transport, mailboxes, and the datalink in one
/// realistic application.
class FileServer {
 public:
  static constexpr std::uint32_t kOpLookup = 1;   // (name) -> fh
  static constexpr std::uint32_t kOpCreate = 2;   // (name) -> fh
  static constexpr std::uint32_t kOpRead = 3;     // (fh, off, len) -> data
  static constexpr std::uint32_t kOpWrite = 4;    // (fh, off, data) -> count
  static constexpr std::uint32_t kOpRemove = 5;   // (name)
  static constexpr std::uint32_t kOpGetattr = 6;  // (fh) -> size
  static constexpr std::uint32_t kOpReaddir = 7;  // () -> names

  static constexpr std::uint32_t kOk = 0;
  static constexpr std::uint32_t kNoEnt = 1;
  static constexpr std::uint32_t kStale = 2;  // unknown handle
  static constexpr std::uint32_t kExists = 3;
  static constexpr std::uint32_t kBad = 4;

  /// Per-call payload ceiling (keeps every RPC under the datalink MTU).
  static constexpr std::uint32_t kMaxIo = 4096;

  FileServer(core::CabRuntime& rt, nproto::ReqResp& reqresp);

  FileServer(const FileServer&) = delete;
  FileServer& operator=(const FileServer&) = delete;

  core::MailboxAddr address() const { return service_.address(); }

  std::uint64_t calls_served() const { return calls_; }
  std::size_t files() const { return by_name_.size(); }

 private:
  struct File {
    std::string name;
    std::vector<std::uint8_t> bytes;
  };

  void server_loop();

  core::CabRuntime& rt_;
  nproto::ReqResp& reqresp_;
  core::Mailbox& service_;
  std::map<std::string, std::uint32_t> by_name_;
  std::map<std::uint32_t, File> by_handle_;
  std::uint32_t next_handle_ = 1;
  std::uint64_t calls_ = 0;
};

/// CAB-side client. Every method is a synchronous RPC; errors come back as
/// status codes (an unreachable server throws, as ReqResp::call does).
class FileClient {
 public:
  FileClient(core::CabRuntime& rt, nproto::ReqResp& reqresp, core::MailboxAddr server);

  struct Status {
    std::uint32_t code = FileServer::kBad;
    bool ok() const { return code == FileServer::kOk; }
  };

  Status lookup(const std::string& name, std::uint32_t* fh_out);
  Status create(const std::string& name, std::uint32_t* fh_out);
  Status remove(const std::string& name);
  Status getattr(std::uint32_t fh, std::uint32_t* size_out);
  Status read(std::uint32_t fh, std::uint32_t offset, std::uint32_t len,
              std::vector<std::uint8_t>* out);
  Status write(std::uint32_t fh, std::uint32_t offset, std::span<const std::uint8_t> data,
               std::uint32_t* written_out);
  Status readdir(std::vector<std::string>* names_out);

  /// Convenience: whole-file transfer, split into kMaxIo chunks.
  Status write_file(const std::string& name, std::span<const std::uint8_t> data);
  Status read_file(const std::string& name, std::vector<std::uint8_t>* out);

 private:
  Marshaller::Encoder start_call(std::uint32_t op, std::uint32_t arg_bytes);
  core::Message finish_call(Marshaller::Encoder& enc);

  core::CabRuntime& rt_;
  nproto::ReqResp& reqresp_;
  core::MailboxAddr server_;
  core::Mailbox& scratch_;
};

}  // namespace nectar::nectarine
