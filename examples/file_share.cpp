// file_share: the paper's §7 NFS ambition in miniature — a remote file
// service on one CAB, found by name (no addresses passed by hand), used
// from another node. Composes the name service, the request-response
// transport (at-most-once), and presentation-layer marshaling (§5.3).
//
//   $ ./file_share

#include <cstdio>
#include <string>

#include "nectarine/names.hpp"
#include "nectarine/remotefs.hpp"
#include "net/system.hpp"

using namespace nectar;

int main() {
  net::NectarSystem sys(3);

  // Node 0: the rendezvous point.
  nectarine::NameServer names(sys.runtime(0), sys.stack(0).reqresp);

  // Node 1: the file server, registered under a well-known name.
  nectarine::FileServer fs(sys.runtime(1), sys.stack(1).reqresp);
  sys.runtime(1).fork_app("announce", [&] {
    nectarine::NameClient nc(sys.runtime(1), sys.stack(1).reqresp, names.address());
    nc.register_name("fileserver", fs.address());
    std::printf("[%8.1f us] node 1: file server registered as \"fileserver\"\n",
                sim::to_usec(sys.engine().now()));
  });

  // Node 2: a client that only knows the service's *name*.
  sys.runtime(2).fork_app("client", [&] {
    core::CabRuntime& rt = sys.runtime(2);
    nectarine::NameClient nc(rt, sys.stack(2).reqresp, names.address());
    core::MailboxAddr server = nc.wait_for("fileserver");
    std::printf("[%8.1f us] node 2: resolved fileserver -> node %d\n",
                sim::to_usec(sys.engine().now()), server.node);

    nectarine::FileClient fc(rt, sys.stack(2).reqresp, server);
    std::string text =
        "The flexibility of our communication processor design does not "
        "compromise its performance.";  // the paper's abstract, roughly
    std::vector<std::uint8_t> data(text.begin(), text.end());
    if (!fc.write_file("/papers/nectar.txt", data).ok()) {
      std::printf("write failed\n");
      return;
    }
    std::printf("[%8.1f us] node 2: wrote %zu bytes to /papers/nectar.txt\n",
                sim::to_usec(sys.engine().now()), data.size());

    std::vector<std::string> listing;
    fc.readdir(&listing);
    for (const auto& name : listing) {
      std::uint32_t fh = 0, size = 0;
      fc.lookup(name, &fh);
      fc.getattr(fh, &size);
      std::printf("[%8.1f us] node 2: %-24s %6u bytes\n", sim::to_usec(sys.engine().now()),
                  name.c_str(), size);
    }

    std::vector<std::uint8_t> back;
    if (fc.read_file("/papers/nectar.txt", &back).ok()) {
      std::printf("[%8.1f us] node 2: read back: \"%.40s...\"\n",
                  sim::to_usec(sys.engine().now()),
                  std::string(back.begin(), back.end()).c_str());
    }
  });

  sys.net().run_until(sim::sec(5));
  std::printf("\nserver stats: %llu RPCs served, %zu files\n",
              static_cast<unsigned long long>(fs.calls_served()), fs.files());
  return 0;
}
