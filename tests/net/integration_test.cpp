// Whole-system integration: concurrent mixed traffic across a multi-node,
// multi-host Nectar — every layer of the repo exercised in one scenario.

#include <gtest/gtest.h>

#include <string>

#include "host/node.hpp"

namespace nectar::net {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

TEST(Integration, MixedProtocolTrafficOnFourNodes) {
  // Node pairs run different protocols simultaneously over the same HUB:
  // 0->1 TCP stream, 2->3 RMP stream, 1->2 datagram pings, 3->0 RPC calls.
  NectarSystem sys(4);

  std::string tcp_data(20000, 't');
  std::string tcp_got;
  bool rpc_done = false, dg_done = false;
  std::string rmp_got;
  std::string rmp_data(10000, 'r');

  // TCP 0 -> 1.
  sys.runtime(1).fork_app("tcp-server", [&] {
    proto::TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    while (tcp_got.size() < tcp_data.size()) {
      core::Message m = c->receive_mailbox().begin_get();
      tcp_got += read_bytes(sys.runtime(1), m);
      c->receive_mailbox().end_get(m);
    }
  });
  sys.runtime(0).fork_app("tcp-client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(50));
    proto::TcpConnection* c = sys.stack(0).tcp.connect(5000, proto::ip_of_node(1), 80);
    ASSERT_TRUE(sys.stack(0).tcp.wait_established(c));
    core::Mailbox& s = sys.runtime(0).create_mailbox("tcp-tx");
    sys.stack(0).tcp.send(c, stage(s, sys.runtime(0), tcp_data));
  });

  // RMP 2 -> 3 (with some loss on the way).
  sys.net().cab(2).out_link().set_drop_rate(0.1, 77);
  core::Mailbox& rmp_sink = sys.runtime(3).create_mailbox("rmp-sink");
  sys.runtime(3).fork_system("rmp-rx", [&] {
    while (rmp_got.size() < rmp_data.size()) {
      core::Message m = rmp_sink.begin_get();
      rmp_got += read_bytes(sys.runtime(3), m);
      rmp_sink.end_get(m);
    }
  });
  sys.runtime(2).fork_system("rmp-tx", [&] {
    core::Mailbox& s = sys.runtime(2).create_mailbox("rmp-tx");
    for (std::size_t off = 0; off < rmp_data.size(); off += 2000) {
      sys.stack(2).rmp.send(rmp_sink.address(),
                            stage(s, sys.runtime(2), rmp_data.substr(off, 2000)));
    }
  });

  // Datagram ping-pong 1 <-> 2.
  core::Mailbox& dg_echo = sys.runtime(2).create_mailbox("dg-echo");
  core::Mailbox& dg_reply = sys.runtime(1).create_mailbox("dg-reply");
  sys.runtime(2).fork_system("dg-echo", [&] {
    for (int i = 0; i < 5; ++i) {
      core::Message m = dg_echo.begin_get();
      auto info = sys.stack(2).datagram.last_sender(dg_echo);
      sys.stack(2).datagram.send({info.src_node, info.src_mailbox}, m);
    }
  });
  sys.runtime(1).fork_system("dg-client", [&] {
    core::Mailbox& s = sys.runtime(1).create_mailbox("dg-tx");
    for (int i = 0; i < 5; ++i) {
      sys.stack(1).datagram.send(dg_echo.address(), stage(s, sys.runtime(1), "ping"), true,
                                 dg_reply.address().index);
      core::Message r = dg_reply.begin_get();
      dg_reply.end_get(r);
    }
    dg_done = true;
  });

  // RPC 3 -> 0.
  core::Mailbox& svc = sys.runtime(0).create_mailbox("svc");
  sys.runtime(0).fork_system("rpc-server", [&] {
    for (int i = 0; i < 4; ++i) {
      core::Message req = svc.begin_get();
      auto info = nproto::ReqResp::parse_request(sys.runtime(0), req);
      sys.stack(0).reqresp.respond(info, nproto::ReqResp::payload_of(req));
    }
  });
  sys.runtime(3).fork_app("rpc-client", [&] {
    core::Mailbox& s = sys.runtime(3).create_mailbox("rpc-tx");
    for (int i = 0; i < 4; ++i) {
      core::Message rsp =
          sys.stack(3).reqresp.call(svc.address(), stage(s, sys.runtime(3), "call"));
      s.end_get(rsp);
    }
    rpc_done = true;
  });

  sys.net().run_until(sim::sec(30));
  EXPECT_EQ(tcp_got, tcp_data);
  EXPECT_EQ(rmp_got, rmp_data);
  EXPECT_TRUE(dg_done);
  EXPECT_TRUE(rpc_done);
}

TEST(Integration, TwoHostPairsShareTheFabric) {
  // Four hosts on four CABs: 0->1 and 2->3 stream through the same HUB.
  NectarSystem sys(4, /*with_vme=*/true);
  host::HostNode h0(sys, 0), h1(sys, 1), h2(sys, 2), h3(sys, 3);

  auto stream = [&sys](host::HostNode& src, host::HostNode& dst, int dst_node,
                       const char* name, int n, std::size_t size, sim::SimTime* done) {
    auto* dstp = new host::HostNectarPort(dst.nin, dst.sockets, name);
    core::MailboxAddr addr = dstp->address();
    dst.host.run_process("rx", [&sys, dstp, n, size, done] {
      std::vector<std::uint8_t> buf(size);
      for (int i = 0; i < n; ++i) dstp->recv(buf);
      *done = sys.engine().now();
    });
    src.host.run_process("tx", [&sys, &src, addr, n, size, dst_node] {
      host::HostNectarPort port(src.nin, src.sockets, "tx");
      std::vector<std::uint8_t> data(size, 0x11);
      for (int i = 0; i < n; ++i) {
        while (sys.stack(port.address().node).rmp.queued_to(dst_node) >= 8) {
          src.host.cpu().sleep_for(sim::usec(200));
        }
        port.send_reliable(addr, data);
      }
    });
  };

  sim::SimTime done01 = 0, done23 = 0;
  stream(h0, h1, 1, "s01", 30, 4096, &done01);
  stream(h2, h3, 3, "s23", 30, 4096, &done23);
  sys.net().run_until(sim::sec(30));
  EXPECT_GT(done01, 0);
  EXPECT_GT(done23, 0);
  // The fabric is non-blocking (crossbar): two disjoint pairs see similar
  // completion times, not 2x serialization.
  double ratio = static_cast<double>(std::max(done01, done23)) /
                 static_cast<double>(std::min(done01, done23));
  EXPECT_LT(ratio, 1.5);
}

TEST(Integration, ProtectionDomainsIsolateApplicationTasks) {
  // §3: "The runtime system can use the multiple protection domains ... to
  // provide firewalls around application tasks if desired."
  NectarSystem sys(1);
  core::CabRuntime& rt = sys.runtime(0);
  hw::ProtectionUnit& prot = rt.board().protection();

  // Give domain 1 read-only access to a page another task owns.
  core::Mailbox& mb = rt.create_mailbox("guarded");
  bool checked = false;
  sys.runtime(0).fork_app("task", [&] {
    core::Message m = mb.begin_put(64);
    hw::CabAddr page_addr = m.data;
    prot.set_range(1, page_addr, 64, hw::ProtectionUnit::Access::Read);
    prot.set_current_domain(1);
    EXPECT_TRUE(prot.check(page_addr, 64, false));    // reads pass
    EXPECT_FALSE(prot.check(page_addr, 64, true));    // writes fault
    prot.set_current_domain(0);                       // reload the register
    EXPECT_TRUE(prot.check(page_addr, 64, true));
    mb.end_put(m);
    checked = true;
  });
  sys.engine().run();
  EXPECT_TRUE(checked);
  EXPECT_GE(prot.faults(), 1u);
}

}  // namespace
}  // namespace nectar::net
