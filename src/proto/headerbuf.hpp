#pragma once

// Headroom-based header composition buffer for the protocol send path.
//
// A packet's headers used to be built inside-out with one std::vector per
// layer: the transport serialized into a fresh vector, IP allocated a larger
// one and copied the transport header behind its own, and the datalink did
// the same again. A HeaderBuf reserves the maximum header depth up front and
// each layer *prepends* into the remaining headroom, so the whole stack
// composes one contiguous [datalink][IP][transport] header with zero
// allocations and zero inter-layer copies. Buffers are pool-recycled through
// HeaderBufLease. The pool is thread_local — one per shard worker thread —
// so the acquire/release fast path stays lock-free under the parallel
// engine. Header buffers never cross shards: they live only inside a node's
// send path, and a node belongs to exactly one shard.
//
// This is purely a host-side optimization: the simulated per-layer CPU costs
// are charged exactly as before, so simulated results are bit-for-bit
// identical.

#include <algorithm>
#include <array>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace nectar::obs {
class Registration;
}

namespace nectar::proto {

/// Fixed-capacity byte buffer filled back-to-front.
class HeaderBuf {
 public:
  /// Deepest header stack in the simulator: datalink (4) + IP (20) + TCP (20)
  /// = 44 bytes; rounded up for headroom.
  static constexpr std::size_t kCapacity = 64;

  /// Claim `n` bytes of headroom in front of the current contents and return
  /// a writable view of them (the new front of the buffer). A stack too deep
  /// for the headroom fails loudly here — never by silently corrupting
  /// neighbouring layers' bytes.
  std::span<std::uint8_t> push_front(std::size_t n) {
    if (n > head_) {
      throw std::logic_error("HeaderBuf: headroom exhausted (requested " + std::to_string(n) +
                             " bytes, " + std::to_string(head_) + " of " +
                             std::to_string(kCapacity) + " remaining)");
    }
    head_ -= n;
    return std::span<std::uint8_t>(buf_.data() + head_, n);
  }

  /// Headroom still unclaimed — layers that compose optional headers (trace
  /// stamps, session frames) check this instead of discovering overflow by
  /// exception.
  std::size_t headroom_remaining() const { return head_; }

  std::size_t size() const { return kCapacity - head_; }
  bool empty() const { return head_ == kCapacity; }
  void reset() { head_ = kCapacity; }

  std::span<const std::uint8_t> bytes() const {
    return std::span<const std::uint8_t>(buf_.data() + head_, size());
  }
  std::span<std::uint8_t> bytes() {
    return std::span<std::uint8_t>(buf_.data() + head_, size());
  }

 private:
  std::size_t head_ = kCapacity;
  std::array<std::uint8_t, kCapacity> buf_{};
};

/// Free list HeaderBufs circulate through. Use through HeaderBufLease.
class HeaderBufPool {
 public:
  /// This thread's pool (thread_local: one per shard worker; leases are
  /// transient and confined to a node's send path, so they never outlive
  /// their thread's pool).
  static HeaderBufPool& instance();

  std::unique_ptr<HeaderBuf> acquire();
  void release(std::unique_ptr<HeaderBuf> b);

  std::uint64_t acquires() const { return acquires_; }
  /// Acquires served from the free list instead of a fresh allocation.
  std::uint64_t reuses() const { return reuses_; }
  std::size_t pooled() const { return free_.size(); }

  /// Drop all pooled buffers (keeps counters; for memory-pressure / tests).
  void trim() { free_.clear(); }

  /// Report pool statistics as probes under (node, `component`). The pool is
  /// process-wide, so callers conventionally pass node -1.
  void register_metrics(obs::Registration& reg, const std::string& component,
                        int node = -1) const;

 private:
  static constexpr std::size_t kMaxPooled = 64;

  std::vector<std::unique_ptr<HeaderBuf>> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

/// Move-only owner of a pooled HeaderBuf. A default-constructed (null) lease
/// means "no header bytes yet": layers that need to prepend acquire a buffer
/// on demand via `ensure()`.
class HeaderBufLease {
 public:
  HeaderBufLease() = default;
  static HeaderBufLease acquire() { return HeaderBufLease(HeaderBufPool::instance().acquire()); }

  /// Convenience conversions (tests, raw datalink users): copy the given
  /// bytes into a fresh pooled buffer. Empty input yields a null lease.
  HeaderBufLease(const std::vector<std::uint8_t>& b)  // NOLINT(google-explicit-constructor)
      : HeaderBufLease(std::span<const std::uint8_t>(b)) {}
  HeaderBufLease(std::initializer_list<std::uint8_t> b)  // NOLINT(google-explicit-constructor)
      : HeaderBufLease(std::span<const std::uint8_t>(b.begin(), b.size())) {}
  explicit HeaderBufLease(std::span<const std::uint8_t> b) {
    if (!b.empty()) {
      std::span<std::uint8_t> dst = ensure().push_front(b.size());
      std::copy(b.begin(), b.end(), dst.begin());
    }
  }

  HeaderBufLease(HeaderBufLease&&) noexcept = default;
  HeaderBufLease& operator=(HeaderBufLease&& o) noexcept {
    if (this != &o) {
      recycle();
      buf_ = std::move(o.buf_);
    }
    return *this;
  }
  HeaderBufLease(const HeaderBufLease&) = delete;
  HeaderBufLease& operator=(const HeaderBufLease&) = delete;
  ~HeaderBufLease() { recycle(); }

  explicit operator bool() const { return buf_ != nullptr; }
  HeaderBuf* operator->() { return buf_.get(); }
  const HeaderBuf* operator->() const { return buf_.get(); }
  HeaderBuf& operator*() { return *buf_; }

  /// Acquire a buffer if this lease is null (a layer below the first header
  /// writer sees `{}` and starts the stack itself).
  HeaderBuf& ensure() {
    if (buf_ == nullptr) buf_ = HeaderBufPool::instance().acquire();
    return *buf_;
  }

  /// Header bytes composed so far (empty for a null lease).
  std::span<const std::uint8_t> bytes() const {
    return buf_ == nullptr ? std::span<const std::uint8_t>{} : buf_->bytes();
  }
  std::size_t size() const { return buf_ == nullptr ? 0 : buf_->size(); }

 private:
  explicit HeaderBufLease(std::unique_ptr<HeaderBuf> b) : buf_(std::move(b)) {}
  void recycle() {
    if (buf_ != nullptr) HeaderBufPool::instance().release(std::move(buf_));
  }

  std::unique_ptr<HeaderBuf> buf_;
};

}  // namespace nectar::proto
