#include "scenario/topology.hpp"

#include <stdexcept>

namespace nectar::scenario {

TopologyKind TopologySpec::parse_kind(const std::string& name) {
  if (name == "star") return TopologyKind::Star;
  if (name == "dual_hub") return TopologyKind::DualHub;
  if (name == "fat_tree") return TopologyKind::FatTree;
  throw std::invalid_argument("topology: unknown kind '" + name +
                              "' (want star | dual_hub | fat_tree)");
}

void ParallelSpec::validate_partition(const std::string& name) {
  if (name != "modulo" && name != "block") {
    throw std::invalid_argument("parallel: unknown partition '" + name +
                                "' (want modulo | block)");
  }
}

namespace {

void build_star(net::Network& net, const TopologySpec& s) {
  if (s.nodes > s.hub_ports) {
    throw std::invalid_argument("topology: star needs nodes <= hub_ports (" +
                                std::to_string(s.nodes) + " > " + std::to_string(s.hub_ports) +
                                "); use fat_tree");
  }
  int h = net.add_hub(s.hub_ports);
  for (int i = 0; i < s.nodes; ++i) net.add_cab(h, i, s.with_vme);
}

void build_dual_hub(net::Network& net, const TopologySpec& s) {
  if (s.trunks < 1) throw std::invalid_argument("topology: dual_hub needs trunks >= 1");
  int cab_ports = s.hub_ports - s.trunks;
  if (s.nodes > 2 * cab_ports) {
    throw std::invalid_argument("topology: dual_hub fits at most " +
                                std::to_string(2 * cab_ports) + " nodes");
  }
  int h0 = net.add_hub(s.hub_ports);
  int h1 = net.add_hub(s.hub_ports);
  // Trunks occupy the top ports, mirrored on both HUBs (routing uses the
  // first trunk found by the BFS; extra trunks serve circuit switching).
  for (int t = 0; t < s.trunks; ++t) {
    int p = s.hub_ports - 1 - t;
    net.link_hubs(h0, p, h1, p, s.trunk_propagation);
  }
  int first_half = (s.nodes + 1) / 2;
  for (int i = 0; i < s.nodes; ++i) {
    bool low = i < first_half;
    net.add_cab(low ? h0 : h1, low ? i : i - first_half, s.with_vme);
  }
}

void build_fat_tree(net::Network& net, const TopologySpec& s, const ParallelSpec& par) {
  if (s.spines < 1) throw std::invalid_argument("topology: fat_tree needs spines >= 1");
  int cabs_per_leaf = s.hub_ports - s.spines;
  if (cabs_per_leaf < 1) {
    throw std::invalid_argument("topology: fat_tree needs hub_ports > spines");
  }
  int leaves = (s.nodes + cabs_per_leaf - 1) / cabs_per_leaf;
  if (leaves < 1) leaves = 1;
  const bool block = par.partition == "block";
  const int shards = net.shard_count();
  // Leaf HUBs first (ids 0..leaves-1), then one spine HUB per uplink with a
  // port per leaf. "block" keeps contiguous leaves (and their CABs — node i
  // lives on leaf i / cabs_per_leaf) on the same shard; "modulo" leaves the
  // default id % shards interleave.
  for (int l = 0; l < leaves; ++l) {
    int shard = block ? static_cast<int>(static_cast<long>(l) * shards / leaves) : -1;
    net.add_hub(s.hub_ports, shard);
  }
  for (int sp = 0; sp < s.spines; ++sp) {
    int shard = block ? static_cast<int>(static_cast<long>(sp) * shards / s.spines) : -1;
    int spine = net.add_hub(leaves, shard);
    for (int l = 0; l < leaves; ++l) {
      net.link_hubs(l, cabs_per_leaf + sp, spine, l, s.trunk_propagation);
    }
  }
  for (int i = 0; i < s.nodes; ++i) {
    net.add_cab(i / cabs_per_leaf, i % cabs_per_leaf, s.with_vme);
  }
}

}  // namespace

int build_topology(net::Network& net, const TopologySpec& spec, std::uint64_t master_seed,
                   const ParallelSpec& par) {
  if (net.hub_count() != 0 || net.cab_count() != 0) {
    throw std::invalid_argument("build_topology: network is not empty");
  }
  if (spec.nodes < 1) throw std::invalid_argument("topology: need nodes >= 1");
  ParallelSpec::validate_partition(par.partition);
  if (par.shards != net.shard_count()) {
    throw std::invalid_argument("build_topology: spec says " + std::to_string(par.shards) +
                                " shards but the network has " +
                                std::to_string(net.shard_count()));
  }
  switch (spec.kind) {
    case TopologyKind::Star:
      build_star(net, spec);
      break;
    case TopologyKind::DualHub:
      build_dual_hub(net, spec);
      break;
    case TopologyKind::FatTree:
      build_fat_tree(net, spec, par);
      break;
  }
  // Must precede install_routes: the route caches fill on first lookup.
  net.set_route_spread(spec.route_spread);
  net.install_routes();
  // One master seed reproduces the whole run: every link derives its fault
  // streams from (master_seed, link name).
  for (int n = 0; n < net.cab_count(); ++n) {
    net.cab(n).out_link().set_fault_seed_base(master_seed);
  }
  return net.cab_count();
}

}  // namespace nectar::scenario
