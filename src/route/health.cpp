#include "route/health.hpp"

#include <limits>

#include "obs/profiler.hpp"
#include "sim/random.hpp"

namespace nectar::route {

namespace {

/// Probe wire format (datagram payload, fixed size):
///   [0]      kind: 1 = request, 2 = response
///   [1]      path index being probed
///   [2..3]   prober node id (LE)
///   [4..7]   prober monitor mailbox index (LE)
///   [8..11]  sequence number (LE; unique per prober)
///   [12..19] send time on the prober's clock (LE; echoed, diagnostic)
///   [20..23] reserved
constexpr std::uint32_t kProbeBytes = 24;
constexpr std::uint8_t kProbeReq = 1;
constexpr std::uint8_t kProbeResp = 2;

std::uint32_t read32(std::span<const std::uint8_t> v, std::size_t off) {
  return static_cast<std::uint32_t>(v[off]) | static_cast<std::uint32_t>(v[off + 1]) << 8 |
         static_cast<std::uint32_t>(v[off + 2]) << 16 |
         static_cast<std::uint32_t>(v[off + 3]) << 24;
}

}  // namespace

HealthMonitor::HealthMonitor(core::CabRuntime& rt, nproto::DatagramProtocol& dg,
                             const PathDb& paths, const RoutingConfig& cfg,
                             HealthListener& listener)
    : rt_(rt),
      dg_(dg),
      paths_(paths),
      cfg_(cfg),
      listener_(listener),
      mailbox_(rt.create_mailbox("route-mon")) {}

void HealthMonitor::start(const std::vector<core::MailboxAddr>& peers) {
  peers_ = &peers;
  // Desynchronize the probe phase across nodes (derived from the routing
  // seed, so runs stay reproducible) — otherwise every node bursts its whole
  // probe fan-out at the same instant.
  sim::SimTime phase = static_cast<sim::SimTime>(
      sim::derive_seed(cfg_.seed, "probe-phase/" + std::to_string(node())) %
      static_cast<std::uint64_t>(cfg_.probe_interval));
  for (int d = 0; d < paths_.node_count(); ++d) {
    if (d == node()) continue;
    int n = paths_.path_count(node(), d);
    for (int p = 0; p < n; ++p) {
      Target t;
      t.dst = d;
      t.path = p;
      t.next_send = phase;
      targets_.push_back(t);
    }
  }
  rt_.fork_system("route-mon", [this] { responder_loop(); });
  rt_.fork_system("route-probe", [this] { prober_loop(); });
}

PathState HealthMonitor::state(int dst, int path) const {
  for (const Target& t : targets_) {
    if (t.dst == dst && t.path == path) return t.state;
  }
  return PathState::Up;
}

void HealthMonitor::prober_loop() {
  core::Cpu& cpu = rt_.cpu();
  for (;;) {
    sim::SimTime now = rt_.engine().now();
    sim::SimTime next = std::numeric_limits<sim::SimTime>::max();
    for (Target& t : targets_) {
      if (t.outstanding && t.deadline <= now) handle_miss(t);
      if (!t.outstanding && t.next_send <= now) send_probe(t);
      next = std::min(next, t.outstanding ? t.deadline : t.next_send);
    }
    sim::SimTime wake =
        next == std::numeric_limits<sim::SimTime>::max() ? now + cfg_.probe_interval : next;
    // CPU charges inside the pass (probe composition, datagram send) advance
    // the sim clock; if they ran past the earliest pending event, take
    // another pass immediately instead of sleeping into the past. Progress is
    // still guaranteed: a pass that acts charges cycles, and a pass that
    // doesn't leaves every event strictly in the future.
    if (wake <= rt_.engine().now()) continue;
    cpu.sleep_until(wake);
  }
}

sim::SimTime interval_for(const RoutingConfig& cfg, PathState s) {
  if (s != PathState::Dead) return cfg.probe_interval;
  return static_cast<sim::SimTime>(static_cast<double>(cfg.probe_interval) * cfg.dead_backoff);
}

void HealthMonitor::send_probe(Target& t) {
  sim::SimTime now = rt_.engine().now();
  std::optional<core::Message> msg = mailbox_.begin_put_try(kProbeBytes);
  if (!msg.has_value()) {
    // Heap pressure: skip this round rather than block the prober.
    t.next_send = now + interval_for(cfg_, t.state);
    return;
  }
  obs::CostScope scope("route/probe");
  std::uint32_t seq = next_seq_++;
  std::uint8_t buf[kProbeBytes] = {};
  buf[0] = kProbeReq;
  buf[1] = static_cast<std::uint8_t>(t.path);
  buf[2] = static_cast<std::uint8_t>(node() & 0xFF);
  buf[3] = static_cast<std::uint8_t>((node() >> 8) & 0xFF);
  std::uint32_t own_mb = mailbox_.address().index;
  for (int i = 0; i < 4; ++i) buf[4 + i] = static_cast<std::uint8_t>((own_mb >> (8 * i)) & 0xFF);
  for (int i = 0; i < 4; ++i) buf[8 + i] = static_cast<std::uint8_t>((seq >> (8 * i)) & 0xFF);
  auto unow = static_cast<std::uint64_t>(now);
  for (int i = 0; i < 8; ++i) buf[12 + i] = static_cast<std::uint8_t>((unow >> (8 * i)) & 0xFF);
  rt_.board().memory().write(msg->data, buf);

  core::Mailbox& mb = mailbox_;
  core::Message m = *msg;
  dg_.send_raw_via(paths_.path(node(), t.dst, t.path), (*peers_)[static_cast<std::size_t>(t.dst)],
                   m.data, kProbeBytes, [&mb, m] { mb.end_get(m); }, own_mb);
  ++probes_sent_;
  t.outstanding = true;
  t.seq = seq;
  t.sent_at = now;
  t.deadline = now + cfg_.probe_timeout;
  outstanding_[seq] = static_cast<std::size_t>(&t - targets_.data());
}

void HealthMonitor::handle_miss(Target& t) {
  outstanding_.erase(t.seq);
  t.outstanding = false;
  ++probe_timeouts_;
  if (t.misses == 0) t.first_miss_sent_at = t.sent_at;
  ++t.misses;
  t.successes = 0;
  if (t.state != PathState::Dead && t.misses >= cfg_.dead_after) {
    t.state = PathState::Dead;
    listener_.on_path_dead(node(), t.dst, t.path, t.first_miss_sent_at);
  } else if (t.state == PathState::Up && t.misses >= cfg_.suspect_after) {
    t.state = PathState::Suspect;
  }
  t.next_send = t.sent_at + interval_for(cfg_, t.state);
}

void HealthMonitor::handle_success(Target& t) {
  t.outstanding = false;
  ++probe_replies_;
  t.misses = 0;
  if (t.state == PathState::Dead) {
    ++t.successes;
    if (t.successes >= cfg_.recover_after) {
      t.state = PathState::Up;
      t.successes = 0;
      listener_.on_path_recovered(node(), t.dst, t.path);
    }
  } else {
    t.state = PathState::Up;
    t.successes = 0;
  }
  t.next_send = t.sent_at + interval_for(cfg_, t.state);
}

void HealthMonitor::responder_loop() {
  for (;;) {
    core::Message m = mailbox_.begin_get();
    obs::CostScope scope("route/respond");
    if (m.len < kProbeBytes) {
      mailbox_.end_get(m);
      continue;
    }
    std::span<const std::uint8_t> v = rt_.board().memory().view(m.data, kProbeBytes);
    std::uint8_t kind = v[0];
    int path = v[1];
    int orig = static_cast<int>(v[2]) | static_cast<int>(v[3]) << 8;
    std::uint32_t orig_mb = read32(v, 4);
    std::uint32_t seq = read32(v, 8);

    if (kind == kProbeReq) {
      // Echo back over the exact reverse of the probed path (PathDb reverse
      // symmetry: our path i to the prober IS the probed path backwards), so
      // the round trip exercises one path and nothing else.
      if (orig >= 0 && orig < paths_.node_count() && orig != node() &&
          path < paths_.path_count(node(), orig)) {
        rt_.board().memory().write8(m.data, kProbeResp);
        core::Mailbox& mb = mailbox_;
        dg_.send_raw_via(paths_.path(node(), orig, path),
                         core::MailboxAddr{orig, orig_mb}, m.data, m.len,
                         [&mb, m] { mb.end_get(m); }, mailbox_.address().index);
      } else {
        mailbox_.end_get(m);
      }
    } else if (kind == kProbeResp) {
      auto it = outstanding_.find(seq);
      if (it != outstanding_.end()) {
        Target& t = targets_[it->second];
        outstanding_.erase(it);
        if (t.outstanding && t.seq == seq) handle_success(t);
      }
      mailbox_.end_get(m);
    } else {
      mailbox_.end_get(m);
    }
  }
}

}  // namespace nectar::route
