#include "scenario/engine.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "sim/random.hpp"

namespace nectar::scenario {

namespace {

/// Reject typo'd keys: every section's vocabulary is closed.
void check_keys(const Section& s, std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : s.values) {
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error("config: unknown key '" + key + "' in section [" + s.name + "]");
    }
  }
}

const char* kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::Star: return "star";
    case TopologyKind::DualHub: return "dual_hub";
    case TopologyKind::FatTree: return "fat_tree";
  }
  return "?";
}

obs::PcapWriter::Format parse_capture_format(const std::string& name) {
  if (name == "raw_ip") return obs::PcapWriter::Format::RawIp;
  if (name == "datalink") return obs::PcapWriter::Format::DatalinkFrame;
  throw std::invalid_argument("capture: unknown format '" + name +
                              "' (want raw_ip | datalink)");
}

/// Capture element grammar: "node<i>.link" — node i's outbound fiber (the
/// same element vocabulary faults use for link targeting).
int parse_capture_node(const std::string& element, int nodes) {
  std::size_t dot = element.rfind(".link");
  if (element.rfind("node", 0) == 0 && dot != std::string::npos &&
      dot + 5 == element.size() && dot > 4) {
    int node = -1;
    try {
      node = std::stoi(element.substr(4, dot - 4));
    } catch (const std::exception&) {
      node = -1;
    }
    if (node >= 0 && node < nodes) return node;
  }
  throw std::invalid_argument("capture: unknown element '" + element +
                              "' (want node<i>.link with i in [0, " + std::to_string(nodes) +
                              "))");
}

}  // namespace

ScenarioSpec ScenarioSpec::from_config(const Config& cfg) {
  ScenarioSpec spec;
  if (const Section* s = cfg.find("scenario")) {
    check_keys(*s, {"name", "seed", "duration", "tcp_congestion", "software_checksum", "mtu",
                    "substrate_metrics", "attach_metrics"});
    spec.name = s->get("name", spec.name);
    spec.seed = static_cast<std::uint64_t>(s->get_int("seed", 1));
    spec.duration = s->get_time("duration", spec.duration);
    spec.tcp_congestion = s->get_bool("tcp_congestion", spec.tcp_congestion);
    spec.software_checksum = s->get_bool("software_checksum", spec.software_checksum);
    spec.mtu = s->get_int("mtu", spec.mtu);
    spec.substrate_metrics = s->get_bool("substrate_metrics", spec.substrate_metrics);
    spec.attach_metrics = s->get_bool("attach_metrics", spec.attach_metrics);
  }
  if (const Section* s = cfg.find("topology")) {
    check_keys(*s, {"kind", "nodes", "hub_ports", "trunks", "spines", "with_vme",
                    "trunk_propagation", "route_spread"});
    spec.topology.kind = TopologySpec::parse_kind(s->get("kind", "star"));
    spec.topology.nodes = static_cast<int>(s->get_int("nodes", spec.topology.nodes));
    spec.topology.hub_ports = static_cast<int>(s->get_int("hub_ports", spec.topology.hub_ports));
    spec.topology.trunks = static_cast<int>(s->get_int("trunks", spec.topology.trunks));
    spec.topology.spines = static_cast<int>(s->get_int("spines", spec.topology.spines));
    spec.topology.with_vme = s->get_bool("with_vme", spec.topology.with_vme);
    spec.topology.trunk_propagation =
        s->get_time("trunk_propagation", spec.topology.trunk_propagation);
    if (spec.topology.trunk_propagation <= 0) {
      throw std::invalid_argument("topology: trunk_propagation must be > 0");
    }
    spec.topology.route_spread = s->get_bool("route_spread", spec.topology.route_spread);
  }
  if (const Section* s = cfg.find("parallel")) {
    check_keys(*s, {"shards", "partition"});
    spec.parallel.shards = static_cast<int>(s->get_int("shards", spec.parallel.shards));
    spec.parallel.partition = s->get("partition", spec.parallel.partition);
    if (spec.parallel.shards < 1) {
      throw std::invalid_argument("parallel: shards must be >= 1");
    }
    ParallelSpec::validate_partition(spec.parallel.partition);
  }
  int wl_index = 0;
  for (const Section* s : cfg.all("workload")) {
    check_keys(*s, {"name", "proto", "mode", "users", "rate", "think", "size", "size_min",
                    "size_max", "stride", "start", "port"});
    WorkloadSpec w;
    w.name = s->get("name", "wl" + std::to_string(wl_index));
    w.proto = WorkloadSpec::parse_proto(s->get("proto", "udp"));
    w.mode = WorkloadSpec::parse_mode(s->get("mode", "closed"));
    w.users = static_cast<int>(s->get_int("users", w.users));
    w.rate = s->get_double("rate", w.rate);
    w.think = s->get_time("think", w.think);
    auto size = static_cast<std::uint32_t>(s->get_int("size", 64));
    w.size_min = static_cast<std::uint32_t>(s->get_int("size_min", size));
    w.size_max = static_cast<std::uint32_t>(s->get_int("size_max", size));
    w.stride = static_cast<int>(s->get_int("stride", w.stride));
    w.start = s->get_time("start", w.start);
    // Workload i claims a private 16-port band so TCP client ports (port+1)
    // never collide across workloads.
    w.port = static_cast<std::uint16_t>(s->get_int("port", 7000 + 16 * wl_index));
    spec.workloads.push_back(std::move(w));
    ++wl_index;
  }
  if (const Section* s = cfg.find("routing")) {
    check_keys(*s, {"enabled", "paths", "probe_interval", "probe_timeout", "suspect_after",
                    "dead_after", "recover_after", "dead_backoff", "revert"});
    spec.routing.enabled = s->get_bool("enabled", spec.routing.enabled);
    spec.routing.paths = static_cast<int>(s->get_int("paths", spec.routing.paths));
    spec.routing.probe_interval = s->get_time("probe_interval", spec.routing.probe_interval);
    spec.routing.probe_timeout = s->get_time("probe_timeout", spec.routing.probe_timeout);
    spec.routing.suspect_after =
        static_cast<int>(s->get_int("suspect_after", spec.routing.suspect_after));
    spec.routing.dead_after = static_cast<int>(s->get_int("dead_after", spec.routing.dead_after));
    spec.routing.recover_after =
        static_cast<int>(s->get_int("recover_after", spec.routing.recover_after));
    spec.routing.dead_backoff = s->get_double("dead_backoff", spec.routing.dead_backoff);
    spec.routing.revert = s->get_bool("revert", spec.routing.revert);
  }
  if (const Section* s = cfg.find("collectives")) {
    check_keys(*s, {"enabled", "mode", "op", "algorithm", "reduce", "payload", "iterations",
                    "interval", "fanout", "timeout", "retransmit", "multicast"});
    CollectivesSpec& c = spec.collectives;
    c.enabled = s->get_bool("enabled", c.enabled);
    c.mode = s->get("mode", c.mode);
    c.op = s->get("op", c.op);
    c.algorithm = s->get("algorithm", c.algorithm);
    c.reduce = s->get("reduce", c.reduce);
    c.payload = s->get_int("payload", c.payload);
    c.iterations = s->get_int("iterations", c.iterations);
    c.interval = s->get_time("interval", c.interval);
    c.fanout = s->get_int("fanout", c.fanout);
    c.timeout = s->get_time("timeout", c.timeout);
    c.retransmit = s->get_time("retransmit", c.retransmit);
    c.multicast = s->get_bool("multicast", c.multicast);
    c.validate();  // reject typos at parse time even when enabled=false
  }
  if (const Section* s = cfg.find("sessions")) {
    check_keys(*s, {"enabled", "trunks", "channels", "trunk_proto", "stride", "rate", "size",
                    "start", "warmup", "classes", "weight_spread", "initial_credit",
                    "credit_refresh", "send_window", "max_batch", "max_channels",
                    "rmp_queue_cap", "aggregation", "fail_timeout", "churn_rate", "churn_start",
                    "churn_duration", "stall_at", "stall_duration", "stall_channels",
                    "probe_channels"});
    SessionsSpec& c = spec.sessions;
    c.enabled = s->get_bool("enabled", c.enabled);
    c.trunks = s->get_int("trunks", c.trunks);
    c.channels = s->get_int("channels", c.channels);
    c.trunk_proto = s->get("trunk_proto", c.trunk_proto);
    c.stride = s->get_int("stride", c.stride);
    c.rate = s->get_double("rate", c.rate);
    c.size = s->get_int("size", c.size);
    c.start = s->get_time("start", c.start);
    c.warmup = s->get_time("warmup", c.warmup);
    c.classes = s->get_int("classes", c.classes);
    c.weight_spread = s->get_int("weight_spread", c.weight_spread);
    c.initial_credit = s->get_int("initial_credit", c.initial_credit);
    c.credit_refresh = s->get_int("credit_refresh", c.credit_refresh);
    c.send_window = s->get_int("send_window", c.send_window);
    c.max_batch = s->get_int("max_batch", c.max_batch);
    c.max_channels = s->get_int("max_channels", c.max_channels);
    c.rmp_queue_cap = s->get_int("rmp_queue_cap", c.rmp_queue_cap);
    c.aggregation = s->get_time("aggregation", c.aggregation);
    c.fail_timeout = s->get_time("fail_timeout", c.fail_timeout);
    c.churn_rate = s->get_double("churn_rate", c.churn_rate);
    c.churn_start = s->get_time("churn_start", c.churn_start);
    c.churn_duration = s->get_time("churn_duration", c.churn_duration);
    c.stall_at = s->get_time("stall_at", c.stall_at);
    c.stall_duration = s->get_time("stall_duration", c.stall_duration);
    c.stall_channels = s->get_int("stall_channels", c.stall_channels);
    c.probe_channels = s->get_int("probe_channels", c.probe_channels);
    c.validate();  // reject typos at parse time even when enabled=false
  }
  for (const Section* s : cfg.all("capture")) {
    check_keys(*s, {"element", "file", "format"});
    CaptureSpec c;
    c.element = s->get("element", "");
    c.file = s->get("file", "");
    c.format = s->get("format", c.format);
    if (c.element.empty()) throw std::runtime_error("config: [capture] needs element");
    if (c.file.empty()) throw std::runtime_error("config: [capture] needs file");
    parse_capture_format(c.format);  // reject typos at parse time
    spec.captures.push_back(std::move(c));
  }
  if (const Section* s = cfg.find("profile")) {
    check_keys(*s, {"folded", "timeline"});
    spec.profile.folded = s->get("folded", "");
    spec.profile.timeline = s->get("timeline", "");
  }
  if (const Section* s = cfg.find("telemetry")) {
    check_keys(*s, {"enabled", "interval", "artifact", "audit", "audit_artifact",
                    "max_samples", "include"});
    spec.telemetry.enabled = s->get_bool("enabled", spec.telemetry.enabled);
    spec.telemetry.interval = s->get_time("interval", spec.telemetry.interval);
    spec.telemetry.artifact = s->get("artifact", "");
    spec.telemetry.audit = s->get_bool("audit", spec.telemetry.audit);
    spec.telemetry.audit_artifact = s->get("audit_artifact", "");
    spec.telemetry.max_samples = s->get_int("max_samples", spec.telemetry.max_samples);
    std::string include = s->get("include", "");
    for (std::size_t pos = 0; pos < include.size();) {
      std::size_t comma = include.find(',', pos);
      if (comma == std::string::npos) comma = include.size();
      std::string pat = include.substr(pos, comma - pos);
      pat.erase(0, pat.find_first_not_of(" \t"));
      pat.erase(pat.find_last_not_of(" \t") + 1);
      if (!pat.empty()) spec.telemetry.include.push_back(std::move(pat));
      pos = comma + 1;
    }
    if (spec.telemetry.interval <= 0) {
      throw std::invalid_argument("telemetry: interval must be > 0");
    }
    if (spec.telemetry.max_samples < 1) {
      throw std::invalid_argument("telemetry: max_samples must be >= 1");
    }
  }
  if (const Section* s = cfg.find("tracing")) {
    check_keys(*s, {"enabled", "sample", "top_k", "max_traces", "artifact"});
    spec.tracing.enabled = s->get_bool("enabled", spec.tracing.enabled);
    spec.tracing.sample = s->get_double("sample", spec.tracing.sample);
    spec.tracing.top_k = s->get_int("top_k", spec.tracing.top_k);
    spec.tracing.max_traces = s->get_int("max_traces", spec.tracing.max_traces);
    spec.tracing.artifact = s->get("artifact", "");
    if (spec.tracing.sample < 0.0 || spec.tracing.sample > 1.0) {
      throw std::invalid_argument("tracing: sample must be in [0, 1]");
    }
    if (spec.tracing.top_k < 0) throw std::invalid_argument("tracing: top_k must be >= 0");
    if (spec.tracing.max_traces < 0) {
      throw std::invalid_argument("tracing: max_traces must be >= 0");
    }
  }
  for (const Section* s : cfg.all("fault")) {
    check_keys(*s, {"kind", "target", "at", "duration", "jitter", "rate", "count"});
    FaultSpec f;
    f.kind = FaultSpec::parse_kind(s->get("kind", ""));
    f.target = s->get("target", "");
    f.at = s->get_time("at", 0);
    f.duration = s->get_time("duration", 0);
    f.jitter = s->get_time("jitter", 0);
    f.rate = s->get_double("rate", f.rate);
    f.count = static_cast<std::uint64_t>(s->get_int("count", 1));
    spec.faults.push_back(std::move(f));
  }
  return spec;
}

Scenario::Scenario(ScenarioSpec spec) : spec_(std::move(spec)), net_(spec_.parallel.shards) {
  if (spec_.parallel.shards > 1) {
    // Both features hang network-global mutable state off every node's hot
    // path (the causal tracer's trace table, the control plane's route
    // updates), which shard workers would race on. Fail at build time.
    if (spec_.tracing.enabled) {
      throw std::invalid_argument("scenario: [tracing] is incompatible with [parallel] shards > 1");
    }
    if (spec_.routing.enabled) {
      throw std::invalid_argument("scenario: [routing] is incompatible with [parallel] shards > 1");
    }
  }
  int n = build_topology(net_, spec_.topology, spec_.seed, spec_.parallel);
  proto::TcpConfig tc;
  tc.software_checksum = spec_.software_checksum;
  tc.congestion_control = spec_.tcp_congestion;
  for (int i = 0; i < n; ++i) {
    stacks_.push_back(std::make_unique<net::NodeStack>(net_, i, tc,
                                                       static_cast<std::size_t>(spec_.mtu)));
  }
  if (spec_.substrate_metrics) net_.register_substrate_metrics();
  if (spec_.routing.enabled) {
    // Every per-element RNG in the control plane (ECMP tie-breaks, probe
    // phases) derives from the scenario master seed, like faults/workloads.
    spec_.routing.seed = sim::derive_seed(spec_.seed, "routing");
    routing_ = std::make_unique<route::RouteManager>(net_, spec_.routing);
    for (int i = 0; i < n; ++i) routing_->attach(i, stack(i).datagram);
    routing_->start();
  }
  if (spec_.tracing.enabled) {
    // Sampling derives from the scenario master seed like every other random
    // stream; activation makes the process-global instrumentation sites live
    // for the duration of this Scenario (the destructor deactivates).
    obs::CausalTracer::Options topt;
    topt.sample = spec_.tracing.sample;
    topt.max_traces = static_cast<std::size_t>(spec_.tracing.max_traces);
    tracer_ = std::make_unique<obs::CausalTracer>(net_.engine(),
                                                  sim::derive_seed(spec_.seed, "tracing"), topt);
    tracer_->activate();
  }
  faults_ = std::make_unique<FaultScheduler>(net_, spec_.seed);
  for (const FaultSpec& f : spec_.faults) faults_->schedule(f);
  std::vector<net::NodeStack*> raw;
  raw.reserve(stacks_.size());
  for (auto& s : stacks_) raw.push_back(s.get());
  for (const WorkloadSpec& w : spec_.workloads) {
    workloads_.push_back(std::make_unique<Workload>(net_, raw, w, spec_.seed));
    workloads_.back()->install();
  }
  if (spec_.collectives.enabled) {
    collectives_ = std::make_unique<CollectiveDriver>(net_, raw, spec_.collectives);
  }
  if (spec_.sessions.enabled) {
    sessions_ = std::make_unique<SessionDriver>(net_, raw, spec_.sessions, spec_.seed);
  }
  for (const CaptureSpec& c : spec_.captures) {
    int node = parse_capture_node(c.element, n);
    auto w = std::make_unique<obs::PcapWriter>(c.file, parse_capture_format(c.format));
    net_.cab(node).out_link().attach_pcap(w.get());
    pcaps_.push_back(std::move(w));
  }
  if (!spec_.profile.folded.empty()) {
    net_.profiler().set_enabled(true);
    net_.profiler().set_autoflush(spec_.profile.folded);
  }
  if (!spec_.profile.timeline.empty()) {
    for (auto& s : stacks_) {
      s->tcp.set_record_timeline(true);
      s->rmp.set_record_events(true);
    }
  }
  if (spec_.telemetry.enabled) {
    // Substrate probes (HUB crossbar, engine pools) plus per-workload flow
    // counters feed the sampler; registration is idempotent, so this
    // composes with [scenario] substrate_metrics.
    net_.register_substrate_metrics();
    telemetry_reg_ = obs::Registration(net_.metrics());
    for (auto& w : workloads_) w->register_metrics(telemetry_reg_);
    obs::Sampler::Options sopt;
    sopt.interval = spec_.telemetry.interval;
    sopt.max_samples = static_cast<std::size_t>(spec_.telemetry.max_samples);
    sopt.include = spec_.telemetry.include;
    sampler_ = std::make_unique<obs::Sampler>(net_.metrics(), sopt);
    if (spec_.telemetry.audit) {
      auditor_ = std::make_unique<obs::Auditor>(&net_.metrics());
      net_.register_audit(*auditor_);
    }
  }
}

void Scenario::run() {
  if (sampler_ != nullptr || auditor_ != nullptr) {
    // Step the clock one sample interval at a time. Between steps no shard
    // worker runs, so sampling the registry and evaluating audit checks is
    // race-free; at shards == 1 the event stream is identical to a single
    // run_until(duration).
    if (sampler_) sampler_->sample(0);
    if (auditor_) auditor_->check(0);
    sim::SimTime t = 0;
    while (t < spec_.duration) {
      t = std::min(t + spec_.telemetry.interval, spec_.duration);
      net_.run_until(t);
      if (sampler_) sampler_->sample(t);
      if (auditor_) auditor_->check(t);
    }
  } else {
    net_.run_until(spec_.duration);
  }
  faults_->finalize();
  if (sampler_) {
    // Overlay the injected faults and routing decisions as marks, now that
    // fault attribution windows are closed.
    const auto& records = faults_->records();
    for (const FaultRecord& r : records) {
      sampler_->mark(r.applied_at, "fault", r.spec.describe(),
                     r.cleared_at >= 0 ? r.cleared_at : spec_.duration);
    }
    if (routing_) {
      for (const route::RouteManager::RouteEvent& e : routing_->events()) {
        sampler_->mark(e.t, e.kind,
                       "node" + std::to_string(e.node) + "->" + std::to_string(e.dst) +
                           " path" + std::to_string(e.path));
      }
    }
    if (sessions_) {
      for (int i = 0; i < nodes(); ++i) {
        for (const session::SessionEvent& e : sessions_->manager(i).events()) {
          sampler_->mark(e.t, "session", "node" + std::to_string(i) + " " + e.kind + ": " +
                                             e.detail);
        }
      }
    }
  }
  if (!spec_.profile.timeline.empty()) {
    std::ofstream out(spec_.profile.timeline, std::ios::binary);
    if (out) out << timelines_json().dump(2) << '\n';
  }
  // Flush capture/profile artifacts now (destructors would too): a scenario
  // that has run leaves complete files behind even if the process aborts
  // between run() and teardown.
  for (auto& p : pcaps_) p->flush();
  if (net_.profiler().enabled() && !spec_.profile.folded.empty()) {
    net_.profiler().write_folded(spec_.profile.folded);
  }
  if (tracer_ && !spec_.tracing.artifact.empty()) {
    obs::CriticalPathAnalyzer cpa(*tracer_);
    std::ofstream out(spec_.tracing.artifact, std::ios::binary);
    if (out) {
      out << cpa.artifact(static_cast<std::size_t>(spec_.tracing.top_k)).dump(2) << '\n';
    }
  }
  if (sampler_ && !spec_.telemetry.artifact.empty()) {
    sampler_->write(spec_.telemetry.artifact, spec_.name);
  }
  if (auditor_) {
    auditor_->finalize(spec_.duration);
    // Write the structured report before failing loudly, so a violated run
    // still leaves the evidence behind.
    if (!spec_.telemetry.audit_artifact.empty()) {
      std::ofstream out(spec_.telemetry.audit_artifact, std::ios::binary);
      if (out) out << auditor_->report_json().dump(2) << '\n';
    }
    auditor_->throw_if_failed();
  }
}

obs::RunReport Scenario::report() {
  obs::RunReport rep("scenario");
  rep.param("name", spec_.name);
  rep.param("seed", static_cast<std::int64_t>(spec_.seed));
  rep.param("topology", kind_name(spec_.topology.kind));
  rep.param("nodes", net_.cab_count());
  rep.param("duration_us", spec_.duration / sim::kMicrosecond);
  rep.param("workloads", static_cast<std::int64_t>(workloads_.size()));
  rep.param("faults", static_cast<std::int64_t>(spec_.faults.size()));
  if (net_.shard_count() > 1) {
    // Only when sharded: a shards=1 run must render byte-identically to the
    // reports committed before the parallel engine existed.
    rep.param("shards", static_cast<std::int64_t>(net_.shard_count()));
    rep.param("partition", spec_.parallel.partition);
  }

  std::uint64_t tcp_retx = 0, tcp_fast = 0;
  obs::LatencyHistogram global;  // per-flow histograms merged across workloads
  for (const auto& w : workloads_) {
    const std::string p = w->spec().name + ".";
    rep.add(p + "sent", static_cast<double>(w->sent()), "count");
    rep.add(p + "delivered", static_cast<double>(w->delivered()), "count");
    rep.add(p + "shed", static_cast<double>(w->shed()), "count");
    rep.add(p + "errors", static_cast<double>(w->errors()), "count");
    rep.add(p + "goodput", w->goodput_mbps(spec_.duration), "Mbit/s");
    rep.add(p + "fairness", w->fairness(), "ratio");
    obs::LatencyHistogram h = w->latency();
    global.merge(h);
    rep.add(p + "latency.count", static_cast<double>(h.count()), "count");
    rep.add(p + "mean", h.mean() / sim::kMicrosecond, "us");
    rep.add(p + "p50", h.p50() / sim::kMicrosecond, "us");
    rep.add(p + "p90", h.p90() / sim::kMicrosecond, "us");
    rep.add(p + "p99", h.p99() / sim::kMicrosecond, "us");
    rep.add(p + "p999", h.p999() / sim::kMicrosecond, "us");
    tcp_retx += w->tcp_retransmissions();
    tcp_fast += w->tcp_fast_retransmits();
  }
  rep.add("global.latency.count", static_cast<double>(global.count()), "count");
  rep.add("global.mean", global.mean() / sim::kMicrosecond, "us");
  rep.add("global.p50", global.p50() / sim::kMicrosecond, "us");
  rep.add("global.p90", global.p90() / sim::kMicrosecond, "us");
  rep.add("global.p99", global.p99() / sim::kMicrosecond, "us");
  rep.add("global.p999", global.p999() / sim::kMicrosecond, "us");

  std::uint64_t rmp_retx = 0, rr_retries = 0;
  for (const auto& s : stacks_) {
    rmp_retx += s->rmp.retransmissions();
    rr_retries += s->reqresp.retries();
  }
  rep.add("drops.total", static_cast<double>(faults_->network_drops()), "count");
  rep.add("drops.fault_attributed", static_cast<double>(faults_->total_attributed_drops()),
          "count");
  rep.add("retransmits.tcp", static_cast<double>(tcp_retx), "count");
  rep.add("retransmits.tcp_fast", static_cast<double>(tcp_fast), "count");
  rep.add("retransmits.rmp", static_cast<double>(rmp_retx), "count");
  rep.add("retries.reqresp", static_cast<double>(rr_retries), "count");
  rep.add("faults.injected", static_cast<double>(faults_->faults_injected()), "count");
  if (net_.shard_count() > 1) {
    // Shard-level load/synchronization gauges. Every value here is a
    // function of simulated execution only (event counts, window counts) —
    // wall-clock shard timings stay out so same-seed same-shard-count runs
    // render byte-identically. Load imbalance shows up directly as skew in
    // the per-shard event counts.
    sim::ParallelEngine& par = net_.parallel();
    const double secs =
        static_cast<double>(spec_.duration) / static_cast<double>(sim::kSecond);
    std::uint64_t total = par.total_events();
    std::uint64_t critical = par.critical_path_events();
    rep.add("parallel.shards", static_cast<double>(net_.shard_count()), "count");
    rep.add("parallel.lookahead", sim::to_usec(net_.lookahead()), "us");
    rep.add("parallel.windows", static_cast<double>(par.windows()), "count");
    rep.add("parallel.cross_events", static_cast<double>(par.cross_events()), "count");
    rep.add("parallel.mailbox_highwater", static_cast<double>(par.mailbox_highwater()),
            "events");
    rep.add("parallel.critical_path_events", static_cast<double>(critical), "count");
    rep.add("parallel.ideal_speedup",
            critical > 0 ? static_cast<double>(total) / static_cast<double>(critical) : 1.0,
            "ratio");
    for (int i = 0; i < net_.shard_count(); ++i) {
      const std::string p = "parallel.shard" + std::to_string(i) + ".";
      std::uint64_t ev = par.shard_events(i);
      rep.add(p + "events", static_cast<double>(ev), "count");
      rep.add(p + "events_per_sim_sec", secs > 0 ? static_cast<double>(ev) / secs : 0.0, "1/s");
    }
  }
  if (routing_) routing_->report_into(rep);
  if (collectives_) collectives_->report_into(rep);
  if (sessions_) sessions_->report_into(rep);
  if (sampler_) {
    rep.add("telemetry.samples", static_cast<double>(sampler_->samples()), "count");
    rep.add("telemetry.series", static_cast<double>(sampler_->series_count()), "count");
    rep.add("telemetry.marks", static_cast<double>(sampler_->marks().size()), "count");
  }
  if (auditor_) {
    rep.add("audit.invariants", static_cast<double>(auditor_->invariants()), "count");
    rep.add("audit.checks", static_cast<double>(auditor_->checks_run()), "count");
    rep.add("audit.violations", static_cast<double>(auditor_->violations().size()), "count");
  }
  for (std::size_t i = 0; i < faults_->records().size(); ++i) {
    const FaultRecord& r = faults_->records()[i];
    const std::string p = "fault" + std::to_string(i) + ".";
    rep.add(p + "applied", sim::to_usec(r.applied_at), "us");
    rep.add(p + "drops", static_cast<double>(r.attributed_drops), "count");
  }
  if (tracer_) {
    // Aggregate tail attribution (throws if the cut-point invariant broke —
    // a tracer bug, never data-dependent).
    obs::CriticalPathAnalyzer cpa(*tracer_);
    cpa.report_into(rep);
    // HUB per-port queue gauges ride along with tracing: where the frames
    // that made the tail were sitting.
    for (int h = 0; h < net_.hub_count(); ++h) {
      hw::Hub& hub = net_.hub(h);
      for (int p = 0; p < hub.num_ports(); ++p) {
        if (!hub.port_attached(p)) continue;
        const std::string pre = "hub." + hub.name() + ".port" + std::to_string(p) + ".";
        rep.add(pre + "queue_depth", static_cast<double>(hub.output_queue_depth(p)), "frames");
        rep.add(pre + "queue_highwater", static_cast<double>(hub.output_queue_highwater(p)),
                "frames");
        rep.add(pre + "blocked", sim::to_usec(hub.output_blocked_time(p)), "us");
      }
    }
  }
  if (spec_.attach_metrics) rep.attach_metrics(net_.metrics().snapshot());
  if (net_.profiler().enabled()) {
    obs::json::Value prof = net_.profiler().summary();
    // Profiling charges no simulated time (a disabled-check branch per charge
    // on the host side only), so the overhead the run paid is identically
    // zero — recorded explicitly so report consumers need not know the
    // design invariant.
    prof.set("sim_overhead_ns", static_cast<std::int64_t>(0));
    rep.extra("profile", std::move(prof));
  }
  if (!spec_.profile.timeline.empty()) rep.extra("timelines", timelines_json());
  return rep;
}

obs::json::Value Scenario::timelines_json() {
  obs::json::Value doc = obs::json::Value::object();
  obs::json::Value tcp = obs::json::Value::array();
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    for (const auto& [id, conn] : stacks_[i]->tcp.connections()) {
      if (conn->timeline().empty()) continue;
      obs::json::Value c = obs::json::Value::object();
      c.set("node", static_cast<std::int64_t>(i));
      c.set("conn", static_cast<std::int64_t>(id));
      obs::json::Value samples = obs::json::Value::array();
      for (const proto::TcpTimelineSample& s : conn->timeline()) {
        obs::json::Value e = obs::json::Value::object();
        e.set("t_ns", s.t);
        e.set("event", s.event);
        e.set("cwnd", static_cast<std::int64_t>(s.cwnd));
        e.set("ssthresh", static_cast<std::int64_t>(s.ssthresh));
        e.set("srtt_ns", s.srtt);
        e.set("rto_ns", s.rto);
        e.set("snd_una", static_cast<std::int64_t>(s.snd_una));
        e.set("snd_nxt", static_cast<std::int64_t>(s.snd_nxt));
        e.set("rcv_nxt", static_cast<std::int64_t>(s.rcv_nxt));
        samples.push(std::move(e));
      }
      c.set("samples", std::move(samples));
      tcp.push(std::move(c));
    }
  }
  doc.set("tcp", std::move(tcp));
  obs::json::Value rmp = obs::json::Value::array();
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    for (const nproto::RmpEvent& ev : stacks_[i]->rmp.events()) {
      obs::json::Value e = obs::json::Value::object();
      e.set("node", static_cast<std::int64_t>(i));
      e.set("t_ns", ev.t);
      e.set("kind", ev.kind);
      e.set("peer", ev.peer);
      e.set("seq", static_cast<std::int64_t>(ev.seq));
      rmp.push(std::move(e));
    }
  }
  doc.set("rmp", std::move(rmp));
  return doc;
}

}  // namespace nectar::scenario
