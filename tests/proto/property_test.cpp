// Property-style parameterized sweeps (TEST_P) across the protocol stack:
// reliability invariants must hold for every loss/corruption rate, MTU, and
// message-size mix, not just the happy path.

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "net/system.hpp"
#include "proto/checksum.hpp"
#include "sim/random.hpp"

namespace nectar::proto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

// --- RMP under loss+corruption ----------------------------------------------------

struct FaultParam {
  double drop;
  double corrupt;
  std::uint64_t seed;
};

class RmpFaultSweep : public ::testing::TestWithParam<FaultParam> {};

TEST_P(RmpFaultSweep, ExactlyOnceInOrderUnderFaults) {
  const FaultParam p = GetParam();
  net::NectarSystem sys(2);
  sys.net().cab(0).out_link().set_drop_rate(p.drop, p.seed);
  sys.net().cab(0).out_link().set_corrupt_rate(p.corrupt, p.seed + 1);
  sys.net().cab(1).out_link().set_drop_rate(p.drop / 2, p.seed + 2);  // lossy ACK path too

  core::Mailbox& sink = sys.runtime(1).create_mailbox("sink");
  constexpr int kN = 25;
  std::vector<std::string> got;
  sys.runtime(0).fork_system("tx", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    for (int i = 0; i < kN; ++i) {
      sys.stack(0).rmp.send(sink.address(), stage(s, sys.runtime(0), "msg" + std::to_string(i)));
    }
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.runtime(1).fork_system("rx", [&] {
    for (int i = 0; i < kN; ++i) {
      core::Message m = sink.begin_get();
      got.push_back(read_bytes(sys.runtime(1), m));
      sink.end_get(m);
    }
  });
  sys.net().run_until(sim::sec(30));

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN))
      << "drop=" << p.drop << " corrupt=" << p.corrupt;
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], "msg" + std::to_string(i));
  }
  EXPECT_EQ(sys.stack(1).rmp.messages_delivered(), static_cast<std::uint64_t>(kN));
}

INSTANTIATE_TEST_SUITE_P(
    FaultRates, RmpFaultSweep,
    ::testing::Values(FaultParam{0.0, 0.0, 1}, FaultParam{0.1, 0.0, 2},
                      FaultParam{0.0, 0.2, 3}, FaultParam{0.25, 0.1, 4},
                      FaultParam{0.4, 0.0, 5}, FaultParam{0.2, 0.2, 6}),
    [](const auto& info) {
      return "drop" + std::to_string(static_cast<int>(info.param.drop * 100)) + "_corrupt" +
             std::to_string(static_cast<int>(info.param.corrupt * 100));
    });

// --- TCP stream integrity under faults -----------------------------------------------

class TcpFaultSweep : public ::testing::TestWithParam<FaultParam> {};

TEST_P(TcpFaultSweep, ByteExactStreamUnderFaults) {
  const FaultParam p = GetParam();
  net::NectarSystem sys(2);
  sys.net().cab(0).out_link().set_drop_rate(p.drop, p.seed);
  sys.net().cab(1).out_link().set_corrupt_rate(p.corrupt, p.seed + 7);

  std::string data;
  sim::Random rng(p.seed * 31 + 5);
  for (int i = 0; i < 30000; ++i) data.push_back(static_cast<char>('A' + rng.next_below(26)));
  std::string got;
  sys.runtime(1).fork_app("server", [&] {
    proto::TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    while (got.size() < data.size()) {
      core::Message m = c->receive_mailbox().begin_get();
      if (m.len == 0) {
        c->receive_mailbox().end_get(m);
        break;
      }
      got += read_bytes(sys.runtime(1), m);
      c->receive_mailbox().end_get(m);
    }
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    proto::TcpConnection* c = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    if (!sys.stack(0).tcp.wait_established(c)) return;
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    std::size_t off = 0;
    while (off < data.size()) {
      std::size_t chunk = std::min<std::size_t>(4096, data.size() - off);
      sys.stack(0).tcp.wait_send_window(c, 64 * 1024);
      sys.stack(0).tcp.send(c, stage(s, sys.runtime(0), data.substr(off, chunk)));
      off += chunk;
    }
  });
  sys.net().run_until(sim::sec(60));
  EXPECT_EQ(got, data) << "drop=" << p.drop << " corrupt=" << p.corrupt;
}

INSTANTIATE_TEST_SUITE_P(
    FaultRates, TcpFaultSweep,
    ::testing::Values(FaultParam{0.0, 0.0, 11}, FaultParam{0.1, 0.0, 12},
                      FaultParam{0.0, 0.15, 13}, FaultParam{0.2, 0.1, 14}),
    [](const auto& info) {
      return "drop" + std::to_string(static_cast<int>(info.param.drop * 100)) + "_corrupt" +
             std::to_string(static_cast<int>(info.param.corrupt * 100));
    });

// --- IP fragmentation across MTUs -------------------------------------------------------

struct FragParam {
  std::size_t mtu;
  std::size_t payload;
};

class FragmentationSweep : public ::testing::TestWithParam<FragParam> {};

TEST_P(FragmentationSweep, ReassemblyIsByteExact) {
  const FragParam p = GetParam();
  net::NectarSystem sys(2, false, {}, p.mtu);
  core::Mailbox& rx = sys.runtime(1).create_mailbox("upper");
  sys.stack(1).ip.register_protocol(200, &rx);

  std::string data;
  sim::Random rng(p.mtu * 1000 + p.payload);
  for (std::size_t i = 0; i < p.payload; ++i) {
    data.push_back(static_cast<char>(rng.next_below(256)));
  }
  std::string got;
  sys.runtime(0).fork_system("tx", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    core::Message m = stage(s, sys.runtime(0), data);
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = 200;
    sys.stack(0).ip.output_msg(info, {}, m, true);
  });
  sys.runtime(1).fork_system("rx", [&] {
    core::Message m = rx.begin_get();
    core::Message payload = core::Mailbox::adjust_prefix(m, IpHeader::kSize);
    got = read_bytes(sys.runtime(1), payload);
    rx.end_get(payload);
  });
  sys.net().run_until(sim::sec(10));
  ASSERT_EQ(got.size(), data.size()) << "mtu=" << p.mtu << " payload=" << p.payload;
  EXPECT_EQ(got, data);
}

INSTANTIATE_TEST_SUITE_P(
    MtuByPayload, FragmentationSweep,
    ::testing::Values(FragParam{576, 100}, FragParam{576, 2000}, FragParam{576, 8000},
                      FragParam{1500, 1480}, FragParam{1500, 1481}, FragParam{1500, 6000},
                      FragParam{4096, 12000}, FragParam{9216, 8192}),
    [](const auto& info) {
      return "mtu" + std::to_string(info.param.mtu) + "_bytes" +
             std::to_string(info.param.payload);
    });

// --- Internet checksum detects single-byte flips everywhere -----------------------------

class ChecksumFlipSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChecksumFlipSweep, DetectsEverySingleByteFlip) {
  std::size_t len = GetParam();
  sim::Random rng(len);
  std::vector<std::uint8_t> data(len);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
  // Embed the checksum at offset 0 (a 16-bit-aligned position regardless of
  // the buffer's parity), then verify.
  data[0] = 0;
  data[1] = 0;
  std::uint16_t sum = InternetChecksum::compute(data);
  data[0] = static_cast<std::uint8_t>(sum >> 8);
  data[1] = static_cast<std::uint8_t>(sum);
  ASSERT_TRUE(InternetChecksum::verify(data));
  for (std::size_t i = 2; i < len; ++i) {
    std::uint8_t flip = static_cast<std::uint8_t>(1 + rng.next_below(255));
    data[i] ^= flip;
    EXPECT_FALSE(InternetChecksum::verify(data)) << "flip at " << i;
    data[i] ^= flip;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChecksumFlipSweep, ::testing::Values(4u, 20u, 21u, 64u, 257u),
                         [](const auto& info) { return "len" + std::to_string(info.param); });

// --- Mailbox message-size sweep across the cache boundary --------------------------------

class MailboxSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MailboxSizeSweep, PutGetRoundTripsAtEverySize) {
  std::uint32_t size = GetParam();
  net::NectarSystem sys(1);
  bool ok = false;
  sys.runtime(0).fork_system("t", [&] {
    core::Mailbox& mb = sys.runtime(0).create_mailbox("mb");
    hw::CabMemory& mem = sys.runtime(0).board().memory();
    for (int round = 0; round < 5; ++round) {
      core::Message m = mb.begin_put(size);
      ASSERT_EQ(m.len, size);
      if (size > 0) {
        mem.write8(m.data, static_cast<std::uint8_t>(round));
        mem.write8(m.data + size - 1, static_cast<std::uint8_t>(round + 1));
      }
      mb.end_put(m);
      core::Message g = mb.begin_get();
      ASSERT_EQ(g.len, size);
      if (size > 1) {
        EXPECT_EQ(mem.read8(g.data), round);
        EXPECT_EQ(mem.read8(g.data + size - 1), round + 1);
      } else if (size == 1) {
        EXPECT_EQ(mem.read8(g.data), round + 1);  // both sentinels share the byte
      }
      mb.end_get(g);
    }
    ok = true;
  });
  sys.engine().run();
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MailboxSizeSweep,
                         ::testing::Values(0u, 1u, 64u, 127u, 128u, 129u, 1024u, 65535u),
                         [](const auto& info) { return "bytes" + std::to_string(info.param); });

}  // namespace
}  // namespace nectar::proto
