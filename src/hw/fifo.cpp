#include "hw/fifo.hpp"

#include <stdexcept>

#include "obs/causal.hpp"

namespace nectar::hw {

FiberInFifo::FiberInFifo(sim::Engine& engine, std::size_t capacity_bytes)
    : engine_(engine), capacity_(capacity_bytes) {}

bool FiberInFifo::offer(Frame&& f, sim::SimTime first_byte, sim::SimTime last_byte) {
  std::size_t need = f.wire_bytes();
  if (used_ + need > capacity_) {
    ++rejected_;
    return false;
  }
  used_ += need;
  ++accepted_;
  if (f.trace.valid()) {
    if (auto* ct = obs::CausalTracer::active()) ct->stage(f.trace, "rx.fifo");
  }
  arrived_.push_back({std::move(f), first_byte, last_byte});
  if (arrival_) arrival_();
  return true;
}

FiberInFifo::ArrivedFrame FiberInFifo::pop() {
  if (arrived_.empty()) throw std::logic_error("FiberInFifo::pop: empty");
  ArrivedFrame af = std::move(arrived_.front());
  arrived_.pop_front();
  used_ -= af.frame.wire_bytes();
  if (drain_notify_) drain_notify_();
  return af;
}

sim::SimTime FiberInFifo::payload_available_at(std::size_t n) const {
  if (arrived_.empty()) throw std::logic_error("FiberInFifo: no frame");
  const ArrivedFrame& af = arrived_.front();
  std::size_t wire = af.frame.wire_bytes();
  if (wire == 0) return af.first_byte;
  // Cut-through: bytes arrive linearly between first_byte and last_byte.
  // 4 bytes of preamble/length precede the payload on the wire.
  double byte_time = static_cast<double>(af.last_byte - af.first_byte) / static_cast<double>(wire);
  std::size_t upto = std::min(n + 4, wire);
  return af.first_byte + static_cast<sim::SimTime>(byte_time * static_cast<double>(upto));
}

}  // namespace nectar::hw
