#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace nectar::core {

class Cpu;

/// A CAB thread (or, on a host CPU, a UNIX process).
///
/// Modeled after the Mach C Threads package the paper derived its threads
/// from (§3.1): forking/joining, mutual exclusion with locks, and
/// synchronization by means of condition variables. All threads on a CAB
/// share the single physical address space.
class Thread {
 public:
  enum class State : std::uint8_t { Ready, Running, Blocked, Finished };

  Thread(Cpu& cpu, std::string name, int priority, std::function<void()> body);

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  const std::string& name() const { return name_; }
  int priority() const { return priority_; }
  State state() const { return state_; }
  bool finished() const { return state_ == State::Finished; }
  Cpu& cpu() { return cpu_; }

 private:
  friend class Cpu;

  Cpu& cpu_;
  std::string name_;
  int priority_;
  State state_ = State::Ready;
  sim::Fiber fiber_;
  std::uint64_t sleep_gen_ = 0;       // invalidates stale sleep timers
  sim::SimTime ready_at_ = -1;        // run-queue entry time (profiler; -1 = unstamped)
  std::vector<Thread*> joiners_;      // threads blocked in join() on us
};

/// Mutual-exclusion lock (paper §3.1). FIFO hand-off to waiters.
class Mutex {
 public:
  explicit Mutex(Cpu& cpu) : cpu_(cpu) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock();
  void unlock();
  bool try_lock();
  bool held() const { return owner_ != nullptr; }
  Thread* owner() const { return owner_; }

 private:
  Cpu& cpu_;
  Thread* owner_ = nullptr;
  std::deque<Thread*> waiters_;
};

/// Condition variable (paper §3.1).
class CondVar {
 public:
  explicit CondVar(Cpu& cpu) : cpu_(cpu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `m`, block, and reacquire `m` when woken.
  void wait(Mutex& m);
  void signal();
  void broadcast();
  std::size_t waiters() const { return waiters_.size(); }

 private:
  Cpu& cpu_;
  std::deque<Thread*> waiters_;
};

/// RAII lock guard.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

}  // namespace nectar::core
