#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/mailbox.hpp"
#include "net/system.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace nectar {
namespace {

/// One 64-byte datagram echo round trip between two CABs. When `churn` is
/// set, heavy schedule+cancel noise is injected into the event pool before
/// and during the run; it must be invisible to every simulated outcome.
struct ScenarioResult {
  std::string report_json;
  std::string trace_json;
  sim::SimTime reply_at = 0;
};

ScenarioResult run_echo_scenario(bool churn) {
  net::NectarSystem sys(2);
  sys.tracer().set_enabled(true);
  auto& svc = sys.runtime(1).create_mailbox("echo");
  auto& reply = sys.runtime(0).create_mailbox("reply");
  sim::SimTime reply_at = 0;
  sys.runtime(1).fork_system("echo", [&] {
    core::Message m = svc.begin_get();
    auto info = sys.stack(1).datagram.last_sender(svc);
    sys.stack(1).datagram.send({info.src_node, info.src_mailbox}, m);
  });
  sys.runtime(0).fork_system("client", [&] {
    auto& s = sys.runtime(0).create_mailbox("s");
    core::Message m = s.begin_put(64);
    sys.stack(0).datagram.send(svc.address(), m, true, reply.address().index);
    core::Message r = reply.begin_get();
    reply_at = sys.engine().now();
    reply.end_get(r);
  });
  sim::Engine& e = sys.engine();
  if (churn) {
    std::vector<sim::Engine::EventId> junk;
    for (int i = 0; i < 300; ++i) junk.push_back(e.schedule_at(900000000 + i, [] {}));
    for (auto id : junk) e.cancel(id);
    // More churn mid-run, from inside the simulation.
    e.schedule_at(100, [&e] {
      for (int i = 0; i < 100; ++i) e.cancel(e.schedule_at(910000000 + i, [] {}));
    });
  }
  e.run();

  obs::RunReport report("pool-metrics-determinism");
  report.param("message_bytes", 64);
  report.add("reply_latency_ns", static_cast<double>(reply_at), "ns");
  ScenarioResult res;
  res.report_json = report.to_json_string();
  res.trace_json = sys.tracer().chrome_json();
  res.reply_at = reply_at;
  return res;
}

TEST(PoolMetrics, SubstrateProbesAreRegistered) {
  net::NectarSystem sys(2);
  sys.net().register_substrate_metrics();
  obs::Snapshot snap = sys.metrics().snapshot();
  for (const char* name :
       {"events_processed", "pending_events", "pool_slots", "pool_free", "pool_reuses",
        "heap_actions"}) {
    EXPECT_NE(snap.find(-1, "sim.engine", name), nullptr) << name;
  }
  for (const char* component : {"hw.framepool", "proto.hdrpool"}) {
    for (const char* name : {"acquires", "reuses", "pooled"}) {
      EXPECT_NE(snap.find(-1, component, name), nullptr) << component << "/" << name;
    }
  }
}

TEST(PoolMetrics, ProbesMoveWithTraffic) {
  obs::Snapshot before;
  obs::Snapshot after;
  {
    net::NectarSystem sys(2);
    sys.net().register_substrate_metrics();
    before = sys.metrics().snapshot();
    auto& svc = sys.runtime(1).create_mailbox("echo");
    auto& reply = sys.runtime(0).create_mailbox("reply");
    sys.runtime(1).fork_system("echo", [&] {
      core::Message m = svc.begin_get();
      auto info = sys.stack(1).datagram.last_sender(svc);
      sys.stack(1).datagram.send({info.src_node, info.src_mailbox}, m);
    });
    sys.runtime(0).fork_system("client", [&] {
      auto& s = sys.runtime(0).create_mailbox("s");
      core::Message m = s.begin_put(64);
      sys.stack(0).datagram.send(svc.address(), m, true, reply.address().index);
      core::Message r = reply.begin_get();
      reply.end_get(r);
    });
    sys.engine().run();
    after = sys.metrics().snapshot();
  }
  obs::Snapshot delta = after.delta(before);
  EXPECT_GT(delta.value_of(-1, "sim.engine", "events_processed"), 0);
  // Both frames of the round trip drew their payload buffers from the pool,
  // and every packet composed its headers in a pooled HeaderBuf.
  EXPECT_GT(delta.value_of(-1, "hw.framepool", "acquires"), 0);
  EXPECT_GT(delta.value_of(-1, "proto.hdrpool", "acquires"), 0);
}

TEST(PoolMetrics, CancelChurnLeavesReportsAndTracesByteIdentical) {
  ScenarioResult plain = run_echo_scenario(false);
  ScenarioResult churned = run_echo_scenario(true);
  EXPECT_GT(plain.reply_at, 0);
  EXPECT_EQ(plain.reply_at, churned.reply_at);
  EXPECT_EQ(plain.report_json, churned.report_json);
  EXPECT_EQ(plain.trace_json, churned.trace_json);
}

}  // namespace
}  // namespace nectar
