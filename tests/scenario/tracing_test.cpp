#include <gtest/gtest.h>

#include <algorithm>

#include "obs/causal.hpp"
#include "obs/json.hpp"
#include "scenario/engine.hpp"

namespace nectar::scenario {
namespace {

// Scenario-level contract for [tracing] (docs/OBSERVABILITY.md): with
// tracing enabled, a full run produces traces whose stage timelines tile the
// end-to-end latency exactly, the artifact and report are deterministic in
// (spec, seed), and with tracing disabled the report is byte-identical to a
// spec with no [tracing] section at all.

ScenarioSpec traced_spec(std::uint64_t seed, const std::string& tracing_section) {
  ScenarioSpec spec = ScenarioSpec::from_config(Config::parse_string(R"(
[scenario]
name = trc
duration = 200ms

[topology]
kind = star
nodes = 4

[workload]
name = udp
proto = udp
mode = open
users = 8
rate = 40
size_min = 64
size_max = 512

[workload]
name = tcp
proto = tcp
mode = closed
users = 2
think = 2ms
size = 256
stride = 2
)" + tracing_section));
  spec.seed = seed;
  return spec;
}

const char* kTracingOn = R"(
[tracing]
enabled = true
sample = 0.5
top_k = 4
)";

TEST(ScenarioTracingTest, InvariantHoldsOverFullScenario) {
  Scenario sc(traced_spec(31, kTracingOn));
  sc.run();
  obs::CausalTracer* t = sc.causal_tracer();
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->started(), 0u);
  EXPECT_GT(t->finished_count(), 0u);
  EXPECT_EQ(t->overflowed(), 0u);
  obs::CriticalPathAnalyzer cpa(*t);
  EXPECT_EQ(cpa.verify(), "") << "stage durations must tile e2e latency exactly";
  // report() routes through report_into, which throws on violation.
  EXPECT_NO_THROW(sc.report());
}

TEST(ScenarioTracingTest, ArtifactAndReportDeterministic) {
  auto run = [](std::uint64_t seed) {
    Scenario sc(traced_spec(seed, kTracingOn));
    sc.run();
    obs::CriticalPathAnalyzer cpa(*sc.causal_tracer());
    return std::make_pair(cpa.artifact(4).dump(2), sc.report().to_json_string());
  };
  auto [art_a, rep_a] = run(31);
  auto [art_b, rep_b] = run(31);
  EXPECT_EQ(art_a, art_b) << "same (spec, seed) must give a byte-identical artifact";
  EXPECT_EQ(rep_a, rep_b);
  auto [art_c, rep_c] = run(32);
  EXPECT_NE(art_a, art_c);
}

TEST(ScenarioTracingTest, ReportCarriesAttributionAndHubGauges) {
  Scenario sc(traced_spec(31, kTracingOn));
  sc.run();
  obs::json::Value doc = obs::json::Value::parse(sc.report().to_json_string());
  std::vector<std::string> names;
  for (const obs::json::Value& row : doc.find("results")->items()) {
    names.push_back(row.find("name")->as_string());
  }
  auto has = [&names](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("tailtrace.traces.started"));
  EXPECT_TRUE(has("tailtrace.traces.finished"));
  for (const char* cls : {"queueing", "serialization", "switching", "dma", "mailbox",
                          "proto", "retransmit", "reroute", "app"}) {
    EXPECT_TRUE(has(std::string("tailtrace.tail.") + cls + "_us")) << cls;
    EXPECT_TRUE(has(std::string("tailtrace.tail.") + cls + "_share")) << cls;
  }
  // Per-port HUB queue gauges export only when tracing is on.
  EXPECT_TRUE(has("hub.hub0.port0.queue_depth"));
  EXPECT_TRUE(has("hub.hub0.port0.queue_highwater"));
  EXPECT_TRUE(has("hub.hub0.port0.blocked"));
}

TEST(ScenarioTracingTest, DisabledTracingLeavesReportUntouched) {
  Scenario plain(traced_spec(31, ""));
  plain.run();
  Scenario off(traced_spec(31, "\n[tracing]\nenabled = false\nsample = 0.5\n"));
  off.run();
  EXPECT_EQ(off.causal_tracer(), nullptr);
  EXPECT_EQ(plain.report().to_json_string(), off.report().to_json_string())
      << "a disabled [tracing] section must not perturb the run";
  EXPECT_EQ(plain.report().to_json_string().find("tailtrace"), std::string::npos);
}

TEST(ScenarioTracingTest, ConfigValidation) {
  EXPECT_THROW(traced_spec(1, "\n[tracing]\nenabled = true\nsample = 1.5\n"),
               std::invalid_argument);
  EXPECT_THROW(traced_spec(1, "\n[tracing]\nenabled = true\ntop_k = -1\n"),
               std::invalid_argument);
  EXPECT_THROW(traced_spec(1, "\n[tracing]\nsampel = 0.5\n"), std::runtime_error);
}

}  // namespace
}  // namespace nectar::scenario
