#include <gtest/gtest.h>

#include "scenario/engine.hpp"

namespace nectar::route {
namespace {

// The determinism contract extends to the control plane: probe schedules,
// ECMP tie-breaks, failovers and reroute-latency histograms all derive from
// the scenario master seed, so the same (spec, seed) — including a fault
// that triggers real rerouting — produces byte-identical reports.

scenario::ScenarioSpec failover_spec(std::uint64_t seed) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_config(scenario::Config::parse_string(R"(
[scenario]
name = routing-det
duration = 300ms

[topology]
kind = fat_tree
nodes = 8
hub_ports = 6
spines = 2

[routing]
enabled = true
paths = 2
probe_interval = 4ms
probe_timeout = 2ms
dead_after = 3
recover_after = 2

[workload]
name = udp
proto = udp
mode = open
users = 8
rate = 300
size = 256
stride = 4

[fault]
kind = hub_blackout
target = hub0.port4
at = 80ms
duration = 60ms
)"));
  spec.seed = seed;
  return spec;
}

struct RunResult {
  std::string report;
  std::uint64_t events;
  std::uint64_t failovers;
  std::uint64_t probes;
};

RunResult run_once(std::uint64_t seed) {
  scenario::Scenario sc(failover_spec(seed));
  sc.run();
  RunResult r;
  r.report = sc.report().to_json_string();
  r.events = sc.net().engine().events_processed();
  r.failovers = sc.routing()->failovers();
  r.probes = sc.routing()->probes_sent();
  return r;
}

TEST(RoutingDeterminismTest, SameSeedByteIdenticalReports) {
  RunResult a = run_once(9);
  RunResult b = run_once(9);
  EXPECT_GE(a.failovers, 1u) << "the fault never triggered a reroute";
  EXPECT_GT(a.probes, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.report, b.report) << "control plane broke the determinism contract";
}

TEST(RoutingDeterminismTest, ReportCarriesRouteRows) {
  scenario::Scenario sc(failover_spec(9));
  sc.run();
  std::string json = sc.report().to_json_string();
  for (const char* key :
       {"route.failovers", "route.probes_sent", "route.probe_timeouts", "route.reroute.count",
        "route.reroute.p99", "route.routes_installed"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing result " << key;
  }
}

TEST(RoutingDeterminismTest, UnknownRoutingKeysRejected) {
  EXPECT_THROW(scenario::ScenarioSpec::from_config(
                   scenario::Config::parse_string("[routing]\nenable = true\n")),
               std::runtime_error);
}

}  // namespace
}  // namespace nectar::route
