#include "nectarine/netshm.hpp"

#include <stdexcept>

namespace nectar::nectarine {

NetSharedMemory::NetSharedMemory(core::CabRuntime& rt, nproto::ReqResp& reqresp, nproto::Rmp& rmp)
    : rt_(rt),
      reqresp_(reqresp),
      rmp_(rmp),
      service_(rt.create_mailbox("netshm-pager")),
      inval_(rt.create_mailbox("netshm-inval")) {
  install_invalidation_upcall();
  rt_.fork_system("netshm-pager", [this] { service_loop(); });
}

void NetSharedMemory::configure(std::function<int(std::uint32_t)> home_of,
                                std::map<int, PeerAddr> peers) {
  home_of_ = std::move(home_of);
  peers_ = std::move(peers);
}

void NetSharedMemory::install_invalidation_upcall() {
  // Applied at interrupt level the moment the RMP data lands — so the RMP
  // acknowledgment that home waits for already implies the copy is gone.
  inval_.set_reader_upcall([this](core::Mailbox& mb) {
    auto m = mb.begin_get_try();
    if (!m.has_value()) return;
    if (m->len >= 4) {
      std::uint32_t page = rt_.board().memory().read32(m->data);
      cache_.erase(page);
      ++inval_applied_;
    }
    mb.end_get(*m);
  });
}

void NetSharedMemory::home_write(std::uint32_t page, const std::vector<std::uint8_t>& data,
                                 int writer_node) {
  (void)writer_node;
  // Reliably invalidate every cached copy before making the write visible.
  std::set<int> targets = readers_[page];
  readers_[page].clear();
  core::Cpu& cpu = rt_.cpu();
  int pending = static_cast<int>(targets.size());
  core::Thread* self = cpu.current_thread();
  for (int node : targets) {
    auto it = peers_.find(node);
    if (it == peers_.end()) {
      --pending;
      continue;
    }
    core::Message m = service_.begin_put(4);
    rt_.board().memory().write32(m.data, page);
    ++inval_sent_;
    rmp_.send(it->second.inval, m, /*free_when_acked=*/true, [&cpu, self, &pending] {
      if (--pending == 0) cpu.wake(self);
    });
  }
  {
    core::InterruptGuard g(cpu);
    while (pending > 0) cpu.block_unmasked();
  }
  master_[page] = data;
}

void NetSharedMemory::service_loop() {
  hw::CabMemory& mem = rt_.board().memory();
  for (;;) {
    core::Message req = service_.begin_get();
    auto info = nproto::ReqResp::parse_request(rt_, req);
    core::Message p = nproto::ReqResp::payload_of(req);

    std::uint32_t op = p.len >= 8 ? mem.read32(p.data) : 0;
    std::uint32_t page = p.len >= 8 ? mem.read32(p.data + 4) : 0;

    if (op == kOpReadPage && home_of_ && home_of_(page) == self()) {
      auto& m = master_[page];
      if (m.empty()) m.assign(kPageSize, 0);
      readers_[page].insert(info.client_node);
      service_.end_get(p);
      core::Message rsp = service_.begin_put(4 + kPageSize);
      mem.write32(rsp.data, kOk);
      mem.write(rsp.data + 4, m);
      reqresp_.respond(info, rsp);
      continue;
    }
    if (op == kOpWritePage && p.len >= 8 + kPageSize && home_of_ && home_of_(page) == self()) {
      std::vector<std::uint8_t> data(kPageSize);
      mem.read(p.data + 8, data);
      service_.end_get(p);
      home_write(page, data, info.client_node);
      core::Message rsp = service_.begin_put(4);
      mem.write32(rsp.data, kOk);
      reqresp_.respond(info, rsp);
      continue;
    }
    service_.end_get(p);
    core::Message rsp = service_.begin_put(4);
    mem.write32(rsp.data, kBad);
    reqresp_.respond(info, rsp);
  }
}

void NetSharedMemory::read(std::uint32_t page, std::span<std::uint8_t> out) {
  if (out.size() < kPageSize) throw std::invalid_argument("NetSharedMemory::read: short buffer");
  if (!home_of_) throw std::logic_error("NetSharedMemory: not configured");
  int home = home_of_(page);
  if (home == self()) {
    auto& m = master_[page];
    if (m.empty()) m.assign(kPageSize, 0);
    std::copy(m.begin(), m.end(), out.begin());
    ++hits_;  // home reads are always local
    return;
  }
  auto it = cache_.find(page);
  if (it != cache_.end()) {
    std::copy(it->second.begin(), it->second.end(), out.begin());
    ++hits_;
    return;
  }
  ++misses_;
  hw::CabMemory& mem = rt_.board().memory();
  core::Message req = service_.begin_put(8);
  mem.write32(req.data, kOpReadPage);
  mem.write32(req.data + 4, page);
  core::Message rsp = reqresp_.call(peers_.at(home).service, req);
  if (rsp.len < 4 + kPageSize || mem.read32(rsp.data) != kOk) {
    service_.end_get(rsp);
    throw std::runtime_error("NetSharedMemory::read: pager refused");
  }
  std::vector<std::uint8_t> data(kPageSize);
  mem.read(rsp.data + 4, data);
  service_.end_get(rsp);
  std::copy(data.begin(), data.end(), out.begin());
  cache_.emplace(page, std::move(data));
}

void NetSharedMemory::write(std::uint32_t page, std::span<const std::uint8_t> in) {
  if (in.size() < kPageSize) throw std::invalid_argument("NetSharedMemory::write: short buffer");
  if (!home_of_) throw std::logic_error("NetSharedMemory: not configured");
  int home = home_of_(page);
  cache_.erase(page);  // our own copy is stale the moment we overwrite
  if (home == self()) {
    home_write(page, std::vector<std::uint8_t>(in.begin(), in.end()), self());
    return;
  }
  ++remote_writes_;
  hw::CabMemory& mem = rt_.board().memory();
  core::Message req = service_.begin_put(static_cast<std::uint32_t>(8 + kPageSize));
  mem.write32(req.data, kOpWritePage);
  mem.write32(req.data + 4, page);
  mem.write(req.data + 8, in.first(kPageSize));
  core::Message rsp = reqresp_.call(peers_.at(home).service, req);
  bool ok = rsp.len >= 4 && mem.read32(rsp.data) == kOk;
  service_.end_get(rsp);
  if (!ok) throw std::runtime_error("NetSharedMemory::write: pager refused");
}

}  // namespace nectar::nectarine
