#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>

#include "hw/pool.hpp"
#include "obs/audit.hpp"
#include "proto/headerbuf.hpp"

namespace nectar::net {

namespace {

/// "a=1 b=2 c=3" detail lines for Auditor violations.
std::string balance_detail(std::initializer_list<std::pair<const char*, std::uint64_t>> terms) {
  std::string out;
  for (const auto& [name, v] : terms) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

Network::Network(int shards)
    : par_(std::make_unique<sim::ParallelEngine>(shards)),
      trace_(par_->shard(0)),
      tracer_(par_->shard(0)) {
  if (shards > 1) {
    // The debug TraceRecorder appends to one shared vector from every mark()
    // site; it is a single-shard tool. Default it off so instrumented code
    // paths on worker threads reduce to one branch (scenario validation
    // additionally rejects configs that would re-enable it).
    trace_.set_enabled(false);
  }
}

void Network::register_audit(obs::Auditor& auditor) {
  // Per-node fiber conservation: every frame that started serializing is
  // accounted for at every tick. Corrupted frames deliver (the far CRC
  // rejects them later), so they sit on the delivered side.
  for (int i = 0; i < cab_count(); ++i) {
    const hw::FiberLink* l = &cabs_[static_cast<std::size_t>(i)]->board->out_link();
    auditor.add("link.frames_conserved", "node" + std::to_string(i) + "." + l->name(), [l] {
      std::uint64_t rhs = l->frames_delivered() + l->frames_dropped() + l->frames_in_flight();
      if (l->frames_sent() == rhs) return std::string();
      return balance_detail({{"sent", l->frames_sent()},
                             {"delivered", l->frames_delivered()},
                             {"dropped", l->frames_dropped()},
                             {"in_flight", l->frames_in_flight()}});
    });
  }
  // Per-HUB crossbar conservation, both sides of the switching stage.
  for (const auto& hp : hubs_) {
    const hw::Hub* h = hp.get();
    auditor.add("hub.input_conserved", h->name(), [h] {
      std::uint64_t queued = 0;
      for (int p = 0; p < h->num_ports(); ++p) queued += h->output_queue_depth(p);
      std::uint64_t lhs = h->frames_in() + h->mcast_out() - h->mcast_in();
      std::uint64_t rhs =
          h->route_errors() + h->blackout_drops_preswitch() + h->frames_switched() + queued;
      if (lhs == rhs) return std::string();
      return balance_detail({{"frames_in", h->frames_in()},
                             {"mcast_in", h->mcast_in()},
                             {"mcast_out", h->mcast_out()},
                             {"route_errors", h->route_errors()},
                             {"blackout_pre", h->blackout_drops_preswitch()},
                             {"switched", h->frames_switched()},
                             {"queued", queued}});
    });
    auditor.add("hub.output_conserved", h->name(), [h] {
      std::uint64_t in_flight = 0;
      for (int p = 0; p < h->num_ports(); ++p) in_flight += h->output_in_flight(p);
      std::uint64_t rhs =
          h->frames_delivered() + in_flight + h->blackout_drops_postswitch();
      if (h->frames_switched() == rhs) return std::string();
      return balance_detail({{"switched", h->frames_switched()},
                             {"delivered", h->frames_delivered()},
                             {"in_flight", in_flight},
                             {"blackout_post", h->blackout_drops_postswitch()}});
    });
  }
  // Per-CAB receive chain: the HUB feed port, the input FIFO and the DMA
  // controller keep independent counters of the same frame stream.
  for (int i = 0; i < cab_count(); ++i) {
    const CabNode* cn = cabs_[static_cast<std::size_t>(i)].get();
    const hw::Hub* h = hubs_[static_cast<std::size_t>(cn->hub)].get();
    const int port = cn->port;
    hw::CabBoard* board = cn->board.get();
    auditor.add("cab.rx_chain_conserved", "node" + std::to_string(i), [h, port, board] {
      std::uint64_t feed = h->output_delivered(port);
      std::uint64_t accepted = board->in_fifo().frames_accepted();
      std::uint64_t drained =
          board->dma().recv_frames() + board->in_fifo().frames_queued();
      if (feed == accepted && accepted == drained) return std::string();
      return balance_detail({{"hub_delivered", feed},
                             {"fifo_accepted", accepted},
                             {"dma_recv", board->dma().recv_frames()},
                             {"fifo_queued", board->in_fifo().frames_queued()}});
    });
  }
  // Per-shard simulator health: event-pool lease balance and a monotone
  // clock across ticks (stateful check — each lambda owns its watermark).
  for (int s = 0; s < shard_count(); ++s) {
    const sim::Engine* e = &par_->shard(s);
    const std::string shard = "shard" + std::to_string(s);
    auditor.add("engine.event_pool_balance", shard, [e] {
      if (e->pool_slots() == e->pool_free() + e->pending_events()) return std::string();
      return balance_detail(
          {{"slots", e->pool_slots()}, {"free", e->pool_free()}, {"pending", e->pending_events()}});
    });
    auditor.add("engine.clock_monotonic", shard,
                [e, last = std::make_shared<sim::SimTime>(0)]() mutable {
                  sim::SimTime now = e->now();
                  if (now < *last) {
                    return "now=" + std::to_string(now) +
                           " previous_tick=" + std::to_string(*last);
                  }
                  *last = now;
                  return std::string();
                });
  }
}

void Network::register_substrate_metrics() {
  if (substrate_metrics_registered_) return;
  substrate_metrics_registered_ = true;
  // Event-queue/pool stats report under node -1. Opt-in rather than always
  // on: committed bench reports snapshot the registry, and the substrate's
  // host-side pool counters are not part of the simulated results those
  // reports track. The per-thread byte pools (hw::BufferPool,
  // proto::HeaderBufPool) additionally span Networks, so auto-registering
  // them would break the guarantee that identical runs snapshot
  // byte-identically.
  if (shard_count() == 1) {
    engine().register_metrics(metrics_reg_);
    hw::BufferPool::payloads().register_metrics(metrics_reg_, "hw.framepool");
    proto::HeaderBufPool::instance().register_metrics(metrics_reg_, "proto.hdrpool");
  } else {
    // Per-shard engines report through the coordinator; the byte pools are
    // thread_local to the worker threads and unreachable (and empty) here.
    par_->register_metrics(metrics_reg_);
  }
  for (const auto& h : hubs_) h->register_metrics(metrics_reg_);
}

int Network::add_hub(int ports, int shard) {
  int id = static_cast<int>(hubs_.size());
  int s = shard < 0 ? id % shard_count() : shard;
  if (s >= shard_count())
    throw std::out_of_range("Network::add_hub: shard " + std::to_string(s) + " out of range");
  hub_shard_.push_back(s);
  hubs_.push_back(
      std::make_unique<hw::Hub>(par_->shard(s), "hub" + std::to_string(id), ports));
  return id;
}

int Network::add_cab(int hub_id, int port, bool with_vme) {
  if (hub_id < 0 || hub_id >= hub_count()) throw std::out_of_range("Network::add_cab: bad hub");
  int node = static_cast<int>(cabs_.size());
  // The CAB inherits its HUB's shard: board, VME bus, runtime fibers and
  // the access link all schedule on this engine, so everything but trunk
  // crossings stays shard-local.
  sim::Engine& eng = hub_engine(hub_id);
  auto cn = std::make_unique<CabNode>();
  std::string node_proc = "node" + std::to_string(node);
  if (with_vme) {
    cn->vme = std::make_unique<hw::VmeBus>(eng, "vme" + std::to_string(node));
    cn->vme->attach_tracer(&tracer_, tracer_.track(node_proc, "vme"));
    cn->vme->attach_profiler(&profiler_);
    cn->vme->register_metrics(metrics_reg_, node);
  }
  cn->board =
      std::make_unique<hw::CabBoard>(eng, "cab" + std::to_string(node), node, cn->vme.get());
  cn->board->dma().attach_profiler(&profiler_, node_proc + ".dma");
  cn->rt = std::make_unique<core::CabRuntime>(*cn->board, &trace_, &metrics_, &tracer_);
  cn->rt->cpu().attach_profiler(&profiler_);
  cn->dl = std::make_unique<proto::Datalink>(*cn->rt);
  cn->hub = hub_id;
  cn->port = port;

  // The node's outbound fiber is its "wire" swimlane.
  cn->board->out_link().attach_tracer(&tracer_, tracer_.track(node_proc, "wire"));
  cn->board->out_link().register_metrics(metrics_reg_, node);

  hw::Hub& h = hub(hub_id);
  cn->board->out_link().attach(h.input(port));
  h.attach_output(port, &cn->board->in_fifo());

  cabs_.push_back(std::move(cn));
  return node;
}

void Network::link_hubs(int hub_a, int port_a, int hub_b, int port_b, sim::SimTime propagation) {
  hw::Hub& a = hub(hub_a);
  hw::Hub& b = hub(hub_b);
  int sa = hub_shard(hub_a);
  int sb = hub_shard(hub_b);
  if (sa == sb) {
    // On a sharded network even same-shard trunks defer their downstream
    // offer to first-byte arrival, so every trunk in the system follows one
    // arrival discipline no matter which ones happen to cross shards —
    // otherwise a HUB fed by a mix of local (offer-at-departure) and remote
    // (offer-at-arrival) trunks would resolve contention differently at
    // different shard counts. A single-shard network keeps the legacy
    // departure-time offers, bit-identical to the sequential simulator.
    bool defer = shard_count() > 1;
    a.attach_output(port_a, b.input(port_b), propagation, defer);
    b.attach_output(port_b, a.input(port_a), propagation, defer);
  } else {
    // Shard boundary: frames posted through the coordinator mailbox. The
    // trunk's flight time is the only simulated delay separating the two
    // shards, so it must be positive — a zero here would mean zero
    // lookahead and the conservative windows could never advance. Fail at
    // wiring time, loudly, instead of deadlocking (or corrupting causality)
    // at run time.
    if (propagation <= 0)
      throw std::invalid_argument(
          "Network::link_hubs: trunk hub" + std::to_string(hub_a) + "<->hub" +
          std::to_string(hub_b) +
          " crosses shards with propagation <= 0; cross-shard trunks need positive "
          "propagation (it bounds the synchronization lookahead)");
    // cross_key encodes (hub, port): a stable identity for deterministic
    // mailbox draining, unique per trunk direction.
    auto key = [](int h, int p) {
      return (static_cast<std::uint64_t>(h) << 16) | static_cast<std::uint64_t>(p);
    };
    a.attach_output_remote(port_a, b.input(port_b), propagation, hub_engine(hub_b),
                           key(hub_a, port_a));
    b.attach_output_remote(port_b, a.input(port_a), propagation, hub_engine(hub_a),
                           key(hub_b, port_b));
    sim::SimTime l = par_->lookahead();
    if (l == 0 || propagation < l) par_->set_lookahead(propagation);
  }
  trunks_.push_back({hub_a, port_a, hub_b, port_b, propagation});
}

const std::vector<std::uint8_t>& Network::hub_path(int src_hub, int dst_hub) const {
  auto [it, inserted] = hub_path_cache_.try_emplace({src_hub, dst_hub});
  if (!inserted) return it->second;
  // BFS over the HUB graph; remember (trunk output port) per step. Same
  // traversal order as the original per-CAB-pair search, so the cached
  // bytes are identical — the cache only removes the O(pairs) recompute.
  //
  // With route spreading on, the trunk scan starts at a hash of the hub
  // pair instead of index 0, rotating which equal-length path wins the BFS
  // tie-break (on a fat-tree: which spine carries this pair). The route is
  // still a pure function of (src_hub, dst_hub) — nothing about shard
  // count, seed, or query order feeds the hash — so reports stay invariant
  // across shard counts and byte-deterministic per run.
  std::size_t scan_start = 0;
  if (route_spread_ && !trunks_.empty()) {
    std::uint64_t h = static_cast<std::uint64_t>(src_hub) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<std::uint64_t>(dst_hub) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= h >> 33;
    scan_start = static_cast<std::size_t>(h % trunks_.size());
  }
  struct Step {
    int hub;
    std::vector<std::uint8_t> route;
  };
  std::deque<Step> frontier{{src_hub, {}}};
  std::vector<bool> visited(hubs_.size(), false);
  visited[static_cast<std::size_t>(src_hub)] = true;
  while (!frontier.empty()) {
    Step cur = std::move(frontier.front());
    frontier.pop_front();
    if (cur.hub == dst_hub) {
      it->second = std::move(cur.route);
      return it->second;
    }
    for (std::size_t k = 0; k < trunks_.size(); ++k) {
      const Trunk& t = trunks_[(scan_start + k) % trunks_.size()];
      if (t.hub_a == cur.hub && !visited[static_cast<std::size_t>(t.hub_b)]) {
        visited[static_cast<std::size_t>(t.hub_b)] = true;
        Step next{t.hub_b, cur.route};
        next.route.push_back(static_cast<std::uint8_t>(t.port_a));
        frontier.push_back(std::move(next));
      }
      if (t.hub_b == cur.hub && !visited[static_cast<std::size_t>(t.hub_a)]) {
        visited[static_cast<std::size_t>(t.hub_a)] = true;
        Step next{t.hub_a, cur.route};
        next.route.push_back(static_cast<std::uint8_t>(t.port_b));
        frontier.push_back(std::move(next));
      }
    }
  }
  hub_path_cache_.erase(it);
  throw std::logic_error("Network: no route between hub " + std::to_string(src_hub) + " and " +
                         std::to_string(dst_hub));
}

std::vector<std::uint8_t> Network::compute_route(int src, int dst) const {
  const CabNode& s = *cabs_.at(static_cast<std::size_t>(src));
  const CabNode& d = *cabs_.at(static_cast<std::size_t>(dst));
  if (s.hub == d.hub) {
    return {static_cast<std::uint8_t>(d.port)};
  }
  std::vector<std::uint8_t> r = hub_path(s.hub, d.hub);
  r.push_back(static_cast<std::uint8_t>(d.port));
  return r;
}

const hw::RouteRef& Network::route_ref(int src, int dst) const {
  auto [it, inserted] = route_cache_.try_emplace({src, dst});
  if (inserted) it->second = hw::RouteRef(compute_route(src, dst));
  return it->second;
}

const std::vector<std::uint8_t>& Network::route(int src, int dst) const {
  return route_ref(src, dst).bytes();
}

const hw::McastRef& Network::mcast_ref(int src, const std::vector<int>& members) const {
  std::vector<int> key_members = members;
  std::sort(key_members.begin(), key_members.end());
  key_members.erase(std::unique(key_members.begin(), key_members.end()), key_members.end());
  auto [it, inserted] = mcast_cache_.try_emplace({src, key_members});
  if (!inserted) return it->second;

  // (hub, output port) -> downstream hub, from the wired trunks: lets the
  // builder follow the port bytes of each unicast hub path hub by hub.
  std::map<std::pair<int, int>, int> next_hub;
  for (const Trunk& t : trunks_) {
    next_hub[{t.hub_a, t.port_a}] = t.hub_b;
    next_hub[{t.hub_b, t.port_b}] = t.hub_a;
  }

  const CabNode& s = *cabs_.at(static_cast<std::size_t>(src));
  hw::McastTree tree;
  tree.nodes.emplace_back();  // node 0: the source CAB's own HUB
  std::map<int, std::int32_t> hub_node{{s.hub, 0}};

  // Overlay each member's unicast hub path onto the tree. Paths to members
  // behind the same hubs share their prefix, so every trunk in the union
  // carries one replica; the per-member CAB port becomes a leaf edge.
  for (int dst : key_members) {
    if (dst == src) continue;  // a node never multicasts to itself
    const CabNode& d = *cabs_.at(static_cast<std::size_t>(dst));
    std::int32_t cur = 0;
    int cur_hub = s.hub;
    for (std::uint8_t port : hub_path(s.hub, d.hub)) {
      auto nh = next_hub.find({cur_hub, static_cast<int>(port)});
      if (nh == next_hub.end())
        throw std::logic_error("Network::mcast_ref: hub path uses a non-trunk port");
      auto [hit, fresh] = hub_node.try_emplace(nh->second);
      if (fresh) {
        hit->second = static_cast<std::int32_t>(tree.nodes.size());
        tree.nodes.emplace_back();
        tree.nodes[static_cast<std::size_t>(cur)].edges.push_back(
            {port, hit->second});
      }
      cur = hit->second;
      cur_hub = nh->second;
    }
    tree.nodes[static_cast<std::size_t>(cur)].edges.push_back(
        {static_cast<std::uint8_t>(d.port), -1});
  }

  for (hw::McastTree::Node& n : tree.nodes) {
    std::sort(n.edges.begin(), n.edges.end(),
              [](const hw::McastTree::Edge& a, const hw::McastTree::Edge& b) {
                return a.port < b.port;
              });
  }
  // Children are always appended after their parent, so a reverse sweep sees
  // every subtree depth before the node that needs it.
  for (std::size_t i = tree.nodes.size(); i-- > 0;) {
    std::uint32_t depth = 0;
    for (const hw::McastTree::Edge& e : tree.nodes[i].edges) {
      std::uint32_t below =
          1 + (e.child >= 0 ? tree.nodes[static_cast<std::size_t>(e.child)].depth : 0);
      depth = std::max(depth, below);
    }
    tree.nodes[i].depth = depth;
  }

  it->second = hw::McastRef(std::move(tree));
  return it->second;
}

void Network::install_routes() {
  for (int s = 0; s < cab_count(); ++s) {
    for (int d = 0; d < cab_count(); ++d) {
      cabs_[static_cast<std::size_t>(s)]->dl->set_route(d, route_ref(s, d));
    }
  }
}

}  // namespace nectar::net
