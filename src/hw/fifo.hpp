#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "hw/frame.hpp"
#include "sim/engine.hpp"

namespace nectar::hw {

/// CAB input FIFO (paper §2.2): temporary buffering between the incoming
/// fiber and CAB memory. Frames arrive cut-through; the datalink layer is
/// told at first-byte time (start-of-packet interrupt) and drains frames via
/// the DMA controller. If the FIFO fills, upstream is back-pressured.
class FiberInFifo : public FrameSink {
 public:
  struct ArrivedFrame {
    Frame frame;
    sim::SimTime first_byte;
    sim::SimTime last_byte;
  };

  FiberInFifo(sim::Engine& engine, std::size_t capacity_bytes = 64 * 1024);

  // FrameSink
  bool offer(Frame&& f, sim::SimTime first_byte, sim::SimTime last_byte) override;
  void set_drain_notify(std::function<void()> fn) override { drain_notify_ = std::move(fn); }

  /// Invoked (once per frame, at its first-byte time) when a frame starts
  /// arriving; the CAB wires this to the start-of-packet interrupt.
  void set_arrival_callback(std::function<void()> fn) { arrival_ = std::move(fn); }

  bool has_frame() const { return !arrived_.empty(); }
  /// Frame whose first byte has arrived (FIFO order). Precondition: has_frame().
  const ArrivedFrame& front() const { return arrived_.front(); }
  /// Remove the front frame (DMA drained it into memory); frees FIFO space
  /// and notifies a stalled upstream.
  ArrivedFrame pop();

  /// Time at which the first `n` payload bytes of the front frame are
  /// available to read (cut-through: they may still be in flight).
  sim::SimTime payload_available_at(std::size_t n) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  /// Frames buffered (accepted, not yet drained by the DMA). Conservation
  /// (audited): frames_accepted == dma recv_frames + frames_queued.
  std::size_t frames_queued() const { return arrived_.size(); }
  std::uint64_t frames_accepted() const { return accepted_; }
  std::uint64_t offers_rejected() const { return rejected_; }

 private:
  sim::Engine& engine_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::deque<ArrivedFrame> arrived_;
  std::function<void()> arrival_;
  std::function<void()> drain_notify_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace nectar::hw
