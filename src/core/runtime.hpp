#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/cpu.hpp"
#include "core/heap.hpp"
#include "core/host_signal.hpp"
#include "core/mailbox.hpp"
#include "core/priorities.hpp"
#include "core/sync.hpp"
#include "hw/cab.hpp"
#include "sim/trace.hpp"

namespace nectar::core {

/// The CAB runtime system (paper §3): boots on a CabBoard and provides the
/// facilities transport protocols and CAB-resident applications are built
/// from — preemptive priority threads, the buffer heap, mailboxes with
/// network-wide addresses, syncs, and the host-CAB signaling layer.
class CabRuntime {
 public:
  explicit CabRuntime(hw::CabBoard& board, sim::TraceRecorder* trace = nullptr);

  CabRuntime(const CabRuntime&) = delete;
  CabRuntime& operator=(const CabRuntime&) = delete;

  hw::CabBoard& board() { return board_; }
  Cpu& cpu() { return cpu_; }
  BufferHeap& heap() { return heap_; }
  HostSignaling& signals() { return signals_; }
  SyncPool& cab_syncs() { return cab_syncs_; }
  SyncPool& host_syncs() { return host_syncs_; }
  sim::Engine& engine() { return board_.engine(); }
  int node_id() const { return board_.node_id(); }

  // --- threads ---------------------------------------------------------------

  Thread* fork_system(std::string name, std::function<void()> body) {
    return cpu_.fork(std::move(name), kSystemPriority, std::move(body));
  }
  Thread* fork_app(std::string name, std::function<void()> body) {
    return cpu_.fork(std::move(name), kAppPriority, std::move(body));
  }

  // --- mailboxes ---------------------------------------------------------------

  /// Create a mailbox with the next network-wide address on this CAB.
  Mailbox& create_mailbox(std::string name);
  /// Look up a local mailbox by its per-CAB index (transport protocols
  /// deliver remote messages through this). nullptr if unknown.
  Mailbox* find_mailbox(std::uint32_t index);
  std::size_t mailbox_count() const { return mailboxes_.size(); }

  // --- datalink hook --------------------------------------------------------------

  /// Install the handler that runs (in interrupt context) when the input
  /// FIFO goes non-empty — the start-of-packet interrupt (§3.1, §4.1).
  void set_packet_handler(std::function<void()> fn) { packet_handler_ = std::move(fn); }

  // --- tracing ----------------------------------------------------------------------

  sim::TraceRecorder* trace() { return trace_; }
  void trace_mark(const char* label) {
    if (trace_ != nullptr) trace_->mark(label);
  }

 private:
  hw::CabBoard& board_;
  Cpu cpu_;
  BufferHeap heap_;
  HostSignaling signals_;
  SyncPool cab_syncs_;
  SyncPool host_syncs_;
  sim::TraceRecorder* trace_;

  std::map<std::uint32_t, std::unique_ptr<Mailbox>> mailboxes_;
  std::uint32_t next_mailbox_ = 1;
  std::function<void()> packet_handler_;
};

}  // namespace nectar::core
