#pragma once

#include "sim/time.hpp"

/// Central cost model: every timing constant in the simulation lives here.
///
/// Anchor values are taken directly from the paper (Cooper et al., SIGCOMM
/// 1990); derived values are calibrated so that the benchmark harness
/// reproduces the *shape* of Table 1 and Figures 6-8. Each constant notes its
/// provenance: [paper] = stated in the text, [derived] = calibrated against a
/// paper-reported aggregate (see DESIGN.md §6 and EXPERIMENTS.md).
namespace nectar::sim::costs {

// ---------------------------------------------------------------------------
// Network hardware (paper §2.1)
// ---------------------------------------------------------------------------

/// [paper] Fiber-optic links run at 100 Mbit/s.
constexpr double kFiberBitsPerSec = 100e6;

/// [paper] Hardware latency to set up a HUB connection and transfer the first
/// byte through a single HUB: 700 ns.
constexpr SimTime kHubSetup = 700;

/// [derived] Propagation delay of one fiber segment (machine-room scale runs,
/// tens of meters; the paper reports fiber+HUB latency < 5 us total).
constexpr SimTime kLinkPropagation = 200;

// ---------------------------------------------------------------------------
// CAB board (paper §2.2)
// ---------------------------------------------------------------------------

/// [paper] CAB CPU is a 16.5 MHz SPARC.
constexpr double kCabCyclesPerSec = 16.5e6;

/// One CAB CPU cycle, rounded to ns (60.6 ns).
constexpr SimTime kCabCycle = 61;

/// Charge for `n` CAB CPU cycles.
constexpr SimTime cab_cycles(std::int64_t n) { return n * kCabCycle; }

/// [paper] Both CAB memories are 35 ns static RAM; DMA between FIFO and data
/// memory proceeds at fiber speed, so the memory system is never the
/// bottleneck. Local DMA setup cost per transfer:
constexpr SimTime kDmaSetup = 1'500;

/// [derived] Fixed hardware cost to launch/complete one fiber DMA burst.
constexpr SimTime kFifoDrain = 500;

// ---------------------------------------------------------------------------
// VME bus (paper §2.2, §6)
// ---------------------------------------------------------------------------

/// [paper] "each read or write over the VME bus takes about 1 usec".
constexpr SimTime kVmeWordAccess = 1'000;

/// Width of one programmed VME transfer (32-bit backplane).
constexpr std::int64_t kVmeWordBytes = 4;

/// [paper] VME DMA bandwidth is about 30 Mbit/s ("throughput ... limited by
/// the bandwidth of the VME bus, which is about 30 Mbit/sec").
constexpr double kVmeDmaBitsPerSec = 30e6;

/// [derived] Arbitration / setup overhead for one VME block transfer.
constexpr SimTime kVmeDmaSetup = 4'000;

// ---------------------------------------------------------------------------
// CAB runtime system (paper §3)
// ---------------------------------------------------------------------------

/// [paper] Context switch time, dominated by saving/restoring SPARC register
/// windows: "20 usec is typical in the current implementation".
constexpr SimTime kContextSwitch = 20'000;

/// Preemption granularity: long CPU charges (e.g. checksumming an 8 KB
/// packet) are sliced so interrupts are delivered within "a few tens of
/// microseconds" (§3.1) rather than at the end of the whole computation.
constexpr SimTime kChargeSlice = 25'000;

/// [derived] Interrupt entry/exit (trap, register window save, dispatch).
constexpr SimTime kInterruptEntry = 2'500;
constexpr SimTime kInterruptExit = 1'000;

/// [derived] Waking a thread (ready-queue insert + priority check).
constexpr SimTime kThreadWakeup = 3'000;

/// [derived] Mutex/condition primitives (uncontended).
constexpr SimTime kLockOp = 500;
constexpr SimTime kCondSignal = 1'000;

/// [derived from Fig. 6] Mailbox primitives executed on the CAB.
/// Paper breakdown shows begin_put = 8 us, end_get = 20 us, message hand-off
/// ("pass message") = 10 us, datalink processing = 18 us sender-side.
constexpr SimTime kMailboxBeginPut = 8'000;
constexpr SimTime kMailboxEndPut = 4'000;
constexpr SimTime kMailboxBeginGet = 3'000;
constexpr SimTime kMailboxEndGet = 8'000;
constexpr SimTime kMailboxEnqueue = 10'000;  // "pass message", pointer move
constexpr SimTime kMailboxAdjust = 1'500;
constexpr SimTime kHeapAlloc = 2'500;
constexpr SimTime kHeapFree = 1'500;
/// Small-buffer cache hit bypasses the heap entirely (§3.3: "each mailbox
/// caches a small buffer; this avoids the cost of heap allocation").
constexpr SimTime kMailboxCachedAlloc = 600;
/// Begin_Put total when the cached buffer satisfies the request.
constexpr SimTime kMailboxBeginPutCached = 2'000;

/// [derived] Sync (lightweight synchronization, §3.4) primitives.
constexpr SimTime kSyncOp = 1'200;

/// [derived] Posting to a signal queue (host->CAB or CAB->host) and raising
/// the cross-bus interrupt.
constexpr SimTime kSignalQueuePost = 2'000;

/// [derived] Upcall invocation (indirect call + argument setup).
constexpr SimTime kUpcall = 1'000;

// ---------------------------------------------------------------------------
// Protocol processing on the CAB (paper §4, §6)
// ---------------------------------------------------------------------------

/// [derived from Fig. 6] Datalink send path: build header, program DMA.
constexpr SimTime kDatalinkSend = 18'000;
/// [derived from Fig. 6] Datalink receive path at interrupt time.
constexpr SimTime kDatalinkRecv = 8'000;

/// [derived] IP header sanity check + checksum over the 20-byte header,
/// performed during the start-of-data upcall.
constexpr SimTime kIpInputHeader = 6'000;
/// [derived] IP output: fill in header template, route lookup.
constexpr SimTime kIpOutput = 7'000;
/// [derived] Reassembly bookkeeping per fragment.
constexpr SimTime kIpReassembly = 4'000;

/// [derived] CAB CPU memory-to-memory copy (only reassembly and other slow
/// paths copy; the mailbox design exists to avoid this on fast paths).
constexpr SimTime kCabCopyPerByte = 120;  // ~2 cycles/byte

/// [derived] UDP per-packet processing (excl. checksum).
constexpr SimTime kUdpInput = 8'000;
constexpr SimTime kUdpOutput = 8'000;

/// [derived] ICMP per-packet processing (runs as a mailbox upcall, §4.1).
constexpr SimTime kIcmpProcessing = 6'000;

/// [derived] TCP per-segment processing (excl. checksum): header parse,
/// sequence bookkeeping, ACK generation / window update.
constexpr SimTime kTcpSegment = 14'000;

/// [derived, see DESIGN.md §6] Software Internet checksum on the 16.5 MHz
/// CAB CPU: ~2.5 cycles/byte. This constant produces the Fig. 7 separation
/// between TCP/IP and RMP ("mostly due to the cost of doing TCP checksums in
/// software") and the near-identity of "TCP w/o checksum" and RMP.
constexpr SimTime kChecksumPerByte = 152;  // ns/byte (~2.5 CAB cycles)

/// [derived] Nectar-specific protocol per-message overhead (they rely on the
/// hardware CRC, so there is no per-byte software cost).
constexpr SimTime kNectarProtoSend = 5'000;
constexpr SimTime kNectarProtoRecv = 4'000;

/// [derived] Session layer (src/session): per-frame header compose/parse is
/// a couple dozen CAB cycles — the whole point of multiplexing is that a
/// logical channel costs a frame, not a protocol connection.
constexpr SimTime kSessionFrameSend = cab_cycles(20);  // ~1.2 us
constexpr SimTime kSessionFrameRecv = cab_cycles(16);  // ~1.0 us
constexpr SimTime kSessionOpen = cab_cycles(30);       // channel state setup
constexpr SimTime kSessionStage = cab_cycles(12);      // try_send bookkeeping

// ---------------------------------------------------------------------------
// Host (Sun-4 workstation, paper §6)
// ---------------------------------------------------------------------------

/// Sun-4/xxx SPARC hosts were moderately faster than the CAB CPU.
constexpr double kHostCyclesPerSec = 25e6;
constexpr SimTime kHostCycle = 40;

/// [derived] Host-side syscall (enter/exit the UNIX kernel).
constexpr SimTime kHostSyscall = 25'000;

/// [derived] Host process poll iteration on a host condition variable:
/// one uncached VME read plus loop overhead.
constexpr SimTime kHostPollLoop = 500;  // in addition to the VME read

/// [derived] Host-side library overhead for one mailbox op (the VME word
/// traffic is charged separately by the bus model).
constexpr SimTime kHostMailboxOp = 1'500;

/// [derived] Host interrupt dispatch (CAB interrupts host; driver runs).
constexpr SimTime kHostInterrupt = 15'000;
/// [derived] Host process context switch / scheduler entry.
constexpr SimTime kHostContextSwitch = 30'000;

/// [derived §6.3] Host-resident BSD protocol stack per-packet cost (socket
/// layer + TCP/IP + driver) on a Sun-4 class host. Calibrated jointly
/// against the paper's two host-stack data points: CAB-as-network-device at
/// 6.4 Mbit/s and on-board Ethernet at 7.2 Mbit/s (both at the 1500-byte
/// MTU) — this is precisely the per-packet burden the communication
/// processor exists to offload.
constexpr SimTime kHostStackPerPacket = 1'300'000;
constexpr SimTime kHostCopyPerByte = 160;  // ns/byte user<->kernel copy

// ---------------------------------------------------------------------------
// Ethernet comparison interface (paper §6.3)
// ---------------------------------------------------------------------------

/// 10 Mbit/s on-board Ethernet (bypasses the VME bus).
constexpr double kEthernetBitsPerSec = 10e6;
constexpr SimTime kEthernetPerPacket = 100'000;  // [derived] lands ~7.2 Mbit/s

}  // namespace nectar::sim::costs
