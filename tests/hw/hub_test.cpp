#include "hw/hub.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/crc.hpp"
#include "hw/link.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace nectar::hw {
namespace {

class RecordingSink : public FrameSink {
 public:
  struct Delivery {
    Frame frame;
    sim::SimTime first;
    sim::SimTime last;
  };
  bool offer(Frame&& f, sim::SimTime first, sim::SimTime last) override {
    if (reject_next > 0) {
      --reject_next;
      return false;
    }
    deliveries.push_back({std::move(f), first, last});
    return true;
  }
  void set_drain_notify(std::function<void()> fn) override { drain = std::move(fn); }
  std::vector<Delivery> deliveries;
  std::function<void()> drain;
  int reject_next = 0;
};

Frame routed_frame(std::vector<std::uint8_t> route, std::size_t len) {
  Frame f;
  f.route = std::move(route);
  f.payload.assign(len, 0x5A);
  f.crc = Crc32::compute(f.payload);
  return f;
}

TEST(Hub, SourceRoutingConsumesOneByte) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink sink;
  hub.attach_output(4, &sink);
  hub.input(0)->offer(routed_frame({4}, 100), 0, 80);
  e.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].frame.remaining_hops(), 0u);
  EXPECT_EQ(hub.frames_switched(), 1u);
}

TEST(Hub, CutThroughAddsOnlySetupLatency) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink sink;
  hub.attach_output(1, &sink, /*propagation=*/0);
  Frame f = routed_frame({1}, 100);
  sim::SimTime ttime = sim::transmit_time(static_cast<std::int64_t>(f.wire_bytes()), 100e6);
  sim::SimTime first_in = 1000, last_in = first_in + ttime;
  hub.input(0)->offer(std::move(f), first_in, last_in);
  e.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  // 700 ns setup, pipelined with arrival (paper §2.1).
  EXPECT_EQ(sink.deliveries[0].first, first_in + sim::costs::kHubSetup);
  EXPECT_EQ(sink.deliveries[0].last, last_in + sim::costs::kHubSetup);
}

TEST(Hub, OutputContentionSerializes) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink sink;
  hub.attach_output(2, &sink, 0);
  // Two inputs race for the same output at the same instant.
  Frame a = routed_frame({2}, 1000);
  Frame b = routed_frame({2}, 1000);
  sim::SimTime ttime = sim::transmit_time(static_cast<std::int64_t>(a.wire_bytes()), 100e6);
  hub.input(0)->offer(std::move(a), 0, ttime);
  hub.input(1)->offer(std::move(b), 0, ttime);
  e.run();
  ASSERT_EQ(sink.deliveries.size(), 2u);
  // Loser starts only after the winner's last byte.
  EXPECT_GE(sink.deliveries[1].first, sink.deliveries[0].last);
}

TEST(Hub, MultiHopThroughTwoHubs) {
  sim::Engine e;
  Hub h1(e, "h1"), h2(e, "h2");
  RecordingSink sink;
  h1.attach_output(3, h2.input(0), 100);
  h2.attach_output(7, &sink, 100);
  // Route: first hub -> port 3, second hub -> port 7.
  h1.input(0)->offer(routed_frame({3, 7}, 200), 0, 200);
  e.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].frame.remaining_hops(), 0u);
  // Two setups and two propagations of extra latency.
  EXPECT_GE(sink.deliveries[0].first, 2 * sim::costs::kHubSetup + 200);
  EXPECT_EQ(h1.frames_switched(), 1u);
  EXPECT_EQ(h2.frames_switched(), 1u);
}

TEST(Hub, ExhaustedRouteIsRouteError) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink sink;
  hub.attach_output(0, &sink);
  hub.input(0)->offer(routed_frame({}, 50), 0, 10);
  e.run();
  EXPECT_TRUE(sink.deliveries.empty());
  EXPECT_EQ(hub.route_errors(), 1u);
}

TEST(Hub, BadPortIsRouteError) {
  sim::Engine e;
  Hub hub(e, "h", 16);
  hub.input(0)->offer(routed_frame({200}, 50), 0, 10);
  hub.input(0)->offer(routed_frame({5}, 50), 0, 10);  // port 5 has no sink
  e.run();
  EXPECT_EQ(hub.route_errors(), 2u);
}

TEST(Hub, CircuitSwitchingCarriesRoutelessFrames) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink sink;
  hub.attach_output(6, &sink);
  ASSERT_TRUE(hub.open_circuit(2, 6));
  hub.input(2)->offer(routed_frame({}, 100), 0, 80);
  e.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(hub.route_errors(), 0u);
}

TEST(Hub, CircuitBlocksOtherInputsUntilClosed) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink sink;
  hub.attach_output(6, &sink);
  ASSERT_TRUE(hub.open_circuit(2, 6));
  // Packet traffic from input 0 to the reserved output waits.
  hub.input(0)->offer(routed_frame({6}, 100), 0, 80);
  e.run();
  EXPECT_TRUE(sink.deliveries.empty());
  hub.close_circuit(2);
  e.run();
  EXPECT_EQ(sink.deliveries.size(), 1u);
}

TEST(Hub, SecondCircuitOnSameOutputRefused) {
  sim::Engine e;
  Hub hub(e, "h");
  EXPECT_TRUE(hub.open_circuit(0, 3));
  EXPECT_FALSE(hub.open_circuit(1, 3));
  EXPECT_EQ(hub.circuit_output(0), 3);
  EXPECT_EQ(hub.circuit_output(1), std::nullopt);
}

TEST(Hub, QueueHighwaterTracksContention) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink sink;
  hub.attach_output(1, &sink, 0);
  for (int i = 0; i < 5; ++i) {
    hub.input(static_cast<int>(i % 16))->offer(routed_frame({1}, 2000), 0, 1600);
  }
  e.run();
  EXPECT_EQ(sink.deliveries.size(), 5u);
  EXPECT_GE(hub.output_queue_highwater(1), 3u);
  EXPECT_GT(hub.output_busy_time(1), 0);
}

TEST(Hub, PortBlackoutDiscardsQueuedAndIncomingFrames) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink sink;
  hub.attach_output(1, &sink, 0);
  // Pile up a queue behind one in-flight frame, then kill the port: the
  // in-flight frame completes, the queue is lost, and frames arriving during
  // the blackout are discarded at the switch.
  for (int i = 0; i < 5; ++i) {
    hub.input(static_cast<int>(i % 16))->offer(routed_frame({1}, 2000), 0, 1600);
  }
  hub.set_port_blackout(1, true);
  EXPECT_TRUE(hub.port_blackout(1));
  EXPECT_EQ(hub.blackout_drops(), 4u);
  hub.input(0)->offer(routed_frame({1}, 2000), 0, 1600);
  e.run();
  EXPECT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(hub.blackout_drops(), 5u);
  hub.set_port_blackout(1, false);
  hub.input(0)->offer(routed_frame({1}, 2000), 0, 1600);
  e.run();
  EXPECT_EQ(sink.deliveries.size(), 2u);  // restored port switches again
  EXPECT_EQ(hub.blackout_drops(), 5u);
}

TEST(Hub, BlackoutDropsAttributedPerPort) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink a, b;
  hub.attach_output(1, &a, 0);
  hub.attach_output(2, &b, 0);
  for (int i = 0; i < 3; ++i) hub.input(i)->offer(routed_frame({1}, 2000), 0, 1600);
  hub.input(3)->offer(routed_frame({2}, 2000), 0, 1600);
  hub.set_port_blackout(1, true);
  hub.input(4)->offer(routed_frame({1}, 2000), 0, 1600);
  e.run();
  // Loss is attributed to the dead port, and only to it; the healthy port's
  // traffic flowed untouched.
  EXPECT_EQ(hub.output_blackout_drops(1), 3u);  // 2 queued + 1 incoming
  EXPECT_EQ(hub.output_blackout_drops(2), 0u);
  EXPECT_EQ(hub.blackout_drops(), 3u);
  EXPECT_EQ(b.deliveries.size(), 1u);

  // Route errors with an in-range port byte are attributed there too; an
  // exhausted route has no port to charge.
  hub.input(0)->offer(routed_frame({5}, 100), 0, 80);  // port 5: no sink
  hub.input(0)->offer(routed_frame({}, 100), 0, 80);   // route exhausted
  e.run();
  EXPECT_EQ(hub.output_route_errors(5), 1u);
  EXPECT_EQ(hub.route_errors(), 2u);

  obs::MetricsRegistry registry;
  obs::Registration reg(registry);
  hub.register_metrics(reg);
  obs::Snapshot snap = registry.snapshot();
  const obs::SnapshotEntry* drops = snap.find(-1, "hub", "h.port1.blackout_drops");
  ASSERT_NE(drops, nullptr);
  EXPECT_EQ(drops->value, 3);
  const obs::SnapshotEntry* ok = snap.find(-1, "hub", "h.port2.blackout_drops");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->value, 0);
  EXPECT_NE(snap.find(-1, "hub", "h.port1.route_errors"), nullptr);
}

TEST(Hub, BlackoutReleasesBackPressuredFrame) {
  sim::Engine e;
  Hub hub(e, "h");
  RecordingSink sink;
  sink.reject_next = 1;
  hub.attach_output(1, &sink, 0);
  hub.input(0)->offer(routed_frame({1}, 100), 0, 80);
  e.run();
  EXPECT_TRUE(sink.deliveries.empty());  // held by back-pressure
  hub.set_port_blackout(1, true);
  EXPECT_GT(hub.output_blocked_time(1), 0);  // the stall was accounted
  EXPECT_EQ(hub.blackout_drops(), 1u);  // the held frame is lost too
  hub.set_port_blackout(1, false);
  ASSERT_TRUE(sink.drain);
  sink.drain();
  e.run();
  EXPECT_TRUE(sink.deliveries.empty());  // nothing left to deliver
}

TEST(Hub, RegisterMetricsExposesPerPortProbes) {
  sim::Engine e;
  Hub hub(e, "h0");
  RecordingSink sink;
  hub.attach_output(1, &sink, 0);
  for (int i = 0; i < 3; ++i) {
    hub.input(static_cast<int>(i % 16))->offer(routed_frame({1}, 2000), 0, 1600);
  }
  e.run();
  obs::MetricsRegistry registry;
  obs::Registration reg(registry);
  hub.register_metrics(reg);
  obs::Snapshot snap = registry.snapshot();
  const obs::SnapshotEntry* frames = snap.find(-1, "hub", "h0.port1.frames");
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->value, 3);
  const obs::SnapshotEntry* busy = snap.find(-1, "hub", "h0.port1.busy_ns");
  ASSERT_NE(busy, nullptr);
  EXPECT_GT(busy->value, 0);
  EXPECT_NE(snap.find(-1, "hub", "h0.port1.blocked_ns"), nullptr);
  EXPECT_NE(snap.find(-1, "hub", "h0.port1.queue_highwater"), nullptr);
  EXPECT_NE(snap.find(-1, "hub", "h0.blackout_drops"), nullptr);
  // Unattached ports register nothing: the probe list stays proportional to
  // the wired fabric, not the radix.
  EXPECT_EQ(snap.find(-1, "hub", "h0.port2.frames"), nullptr);
}

}  // namespace
}  // namespace nectar::hw
