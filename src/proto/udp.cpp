#include "proto/udp.hpp"

#include <array>
#include <span>

#include "proto/icmp.hpp"

#include "obs/causal.hpp"
#include "obs/profiler.hpp"
#include "proto/checksum.hpp"
#include "sim/costs.hpp"

namespace nectar::proto {

namespace costs = sim::costs;

Udp::Udp(Ip& ip, bool checksum_enabled)
    : ip_(ip),
      input_(ip.runtime().create_mailbox("udp-input")),
      checksum_enabled_(checksum_enabled) {
  ip_.register_protocol(kProtoUdp, &input_);
  // §4.1: "UDP and TCP each have their own server threads."
  ip_.runtime().fork_system("udp-server", [this] { server_loop(); });
}

void Udp::bind(std::uint16_t port, core::Mailbox* deliver) { ports_[port] = deliver; }
void Udp::unbind(std::uint16_t port) { ports_.erase(port); }

Udp::DatagramInfo Udp::info_of(const core::Message& m) const {
  hw::CabMemory& mem = ip_.runtime().board().memory();
  IpHeader iph = IpHeader::parse(mem.view(m.data, IpHeader::kSize));
  UdpHeader uh = UdpHeader::parse(mem.view(m.data + IpHeader::kSize, UdpHeader::kSize));
  DatagramInfo info;
  info.src_addr = iph.src;
  info.dst_addr = iph.dst;
  info.src_port = uh.src_port;
  info.dst_port = uh.dst_port;
  info.payload_len = uh.length - UdpHeader::kSize;
  return info;
}

core::Message Udp::payload_of(core::Message m) {
  return core::Mailbox::adjust_prefix(m, kHeaderSpace);
}

void Udp::send(std::uint16_t src_port, IpAddr dst, std::uint16_t dst_port, core::Message data,
               bool free_when_sent, obs::TraceContext tctx) {
  core::Cpu& cpu = ip_.runtime().cpu();
  hw::CabMemory& mem = ip_.runtime().board().memory();
  obs::CostScope scope("udp/output");
  cpu.charge(costs::kUdpOutput);
  ++sent_;
  if (tctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->stage(tctx, "tx.udp", "node" + std::to_string(ip_.runtime().node_id()));
    }
  }

  UdpHeader uh;
  uh.src_port = src_port;
  uh.dst_port = dst_port;
  uh.length = static_cast<std::uint16_t>(UdpHeader::kSize + data.len);
  HeaderBufLease lease = HeaderBufLease::acquire();
  std::span<std::uint8_t> hdr = lease->push_front(UdpHeader::kSize);
  uh.serialize(hdr);

  if (checksum_enabled_) {
    obs::CostScope cksum("udp/checksum");
    cpu.charge(checksum_cost(UdpHeader::kSize + data.len + PseudoHeader::kSize));
    PseudoHeader ph{ip_.address(), dst, kProtoUdp, uh.length};
    std::array<std::uint8_t, PseudoHeader::kSize> pseudo;
    ph.serialize(pseudo);
    InternetChecksum c;
    c.update(pseudo);
    c.update(hdr);
    c.update(mem.view(data.data, data.len));
    std::uint16_t sum = c.value();
    if (sum == 0) sum = 0xFFFF;  // RFC 768: transmitted 0 means "no checksum"
    put16(hdr, 6, sum);
  }

  Ip::OutputInfo info;
  info.dst = dst;
  info.protocol = kProtoUdp;
  ip_.output_msg(info, std::move(lease), data, free_when_sent, tctx);
}

void Udp::server_loop() {
  core::Cpu& cpu = ip_.runtime().cpu();
  hw::CabMemory& mem = ip_.runtime().board().memory();
  int node = ip_.runtime().node_id();
  for (;;) {
    core::Message m = input_.begin_get();
    obs::CausalTracer* ct = obs::CausalTracer::active();
    obs::TraceContext rctx = ct != nullptr ? ct->lookup(node, m.data) : obs::TraceContext{};
    if (ct != nullptr && rctx.valid()) {
      ct->stage(rctx, "rx.udp", "node" + std::to_string(node));
    }
    obs::CostScope scope("udp/input");
    cpu.charge(costs::kUdpInput);
    if (m.len < kHeaderSpace) {
      input_.end_get(m);
      continue;
    }
    IpHeader iph = IpHeader::parse(mem.view(m.data, IpHeader::kSize));
    UdpHeader uh = UdpHeader::parse(mem.view(m.data + IpHeader::kSize, UdpHeader::kSize));

    if (checksum_enabled_ && uh.checksum != 0) {
      obs::CostScope cksum("udp/checksum");
      std::size_t udp_len = m.len - IpHeader::kSize;
      cpu.charge(checksum_cost(udp_len + PseudoHeader::kSize));
      PseudoHeader ph{iph.src, iph.dst, kProtoUdp, static_cast<std::uint16_t>(udp_len)};
      std::array<std::uint8_t, PseudoHeader::kSize> pseudo;
      ph.serialize(pseudo);
      InternetChecksum c;
      c.update(pseudo);
      c.update(mem.view(m.data + IpHeader::kSize, udp_len));
      if (c.value() != 0) {
        ++dropped_bad_checksum_;
        if (ct != nullptr && rctx.valid()) {
          ct->annotate(rctx, "drop.udp_checksum");
          ct->stage(rctx, "loss.wait", "node" + std::to_string(node));
        }
        input_.end_get(m);
        continue;
      }
    }

    auto it = ports_.find(uh.dst_port);
    if (it == ports_.end()) {
      ++dropped_no_port_;
      if (icmp_ != nullptr && iph.src != ip_.address()) {
        icmp_->send_unreachable(/*port unreachable*/ 3, m);
      } else {
        input_.end_get(m);
      }
      continue;
    }
    ++delivered_;
    if (ct != nullptr && rctx.valid()) {
      ct->stage(rctx, "mbox.wait", "node" + std::to_string(node));
    }
    input_.enqueue(m, *it->second);
  }
}

}  // namespace nectar::proto
