#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "nproto/reqresp.hpp"
#include "nproto/rmp.hpp"

namespace nectar::nectarine {

/// Distributed lock manager offloaded to the CAB — the paper's §5.3 Camelot
/// experiment: "Communication is a major bottleneck in the Camelot
/// distributed transaction system, so experiments are being planned to
/// offload Camelot's distributed locking and commit protocols to the CAB."
///
/// One CAB hosts the lock table; clients anywhere on the Nectar acquire and
/// release named locks through the request-response protocol (at-most-once,
/// so a retransmitted acquire is not granted twice). Shared (read) and
/// exclusive (write) modes with FIFO queuing. An acquire that cannot be
/// granted immediately is answered "queued"; the grant itself arrives later
/// through the reliable message protocol at the client's grant mailbox — so
/// a waiting client simply blocks in Begin_Get and costs no CPU anywhere.
class LockServer {
 public:
  enum class Mode : std::uint8_t { Shared = 0, Exclusive = 1 };

  // Request layout (native order, shared-memory convention):
  // [u32 op][u32 mode][u32 owner-id][u32 grant-mailbox][name bytes].
  // Response: [u32 status]. Deferred grants: 4-byte kGranted via RMP.
  static constexpr std::uint32_t kOpAcquire = 1;
  static constexpr std::uint32_t kOpRelease = 2;
  static constexpr std::uint32_t kOpTryAcquire = 3;

  static constexpr std::uint32_t kGranted = 1;
  static constexpr std::uint32_t kQueued = 2;
  static constexpr std::uint32_t kWouldBlock = 3;
  static constexpr std::uint32_t kNotHeld = 4;
  static constexpr std::uint32_t kBadRequest = 5;

  LockServer(core::CabRuntime& rt, nproto::ReqResp& reqresp, nproto::Rmp& rmp);

  LockServer(const LockServer&) = delete;
  LockServer& operator=(const LockServer&) = delete;

  /// Where clients send their lock requests.
  core::MailboxAddr address() const { return service_.address(); }

  std::uint64_t grants() const { return grants_; }
  std::uint64_t queued_waits() const { return queued_waits_; }
  std::size_t locks_held() const;

 private:
  struct Owner {
    std::uint32_t owner_id;
    Mode mode;
  };
  struct Waiter {
    int node;
    std::uint32_t grant_mailbox;
    std::uint32_t owner_id;
    Mode mode;
  };
  struct LockState {
    std::vector<Owner> holders;  // all Shared, or a single Exclusive
    std::deque<Waiter> waiters;
  };

  void server_loop();
  bool compatible(const LockState& l, Mode m) const;
  void promote_waiters(LockState& l);
  void send_grant(const Waiter& w);

  core::CabRuntime& rt_;
  nproto::ReqResp& reqresp_;
  nproto::Rmp& rmp_;
  core::Mailbox& service_;
  std::map<std::string, LockState> locks_;
  std::uint64_t grants_ = 0;
  std::uint64_t queued_waits_ = 0;
};

/// CAB-side client for the lock service. Acquire blocks the calling CAB
/// thread (in its grant mailbox) until the lock is granted.
class LockClient {
 public:
  LockClient(core::CabRuntime& rt, nproto::ReqResp& reqresp, core::MailboxAddr server,
             std::uint32_t owner_id);

  /// Acquire; blocks until granted. Returns false only on protocol failure.
  bool acquire(const std::string& name, LockServer::Mode mode);
  /// Try without waiting; true if granted.
  bool try_acquire(const std::string& name, LockServer::Mode mode);
  /// Release; true if the server confirmed we held it.
  bool release(const std::string& name);

  std::uint32_t owner_id() const { return owner_id_; }

 private:
  std::uint32_t call(std::uint32_t op, const std::string& name, LockServer::Mode mode);

  core::CabRuntime& rt_;
  nproto::ReqResp& reqresp_;
  core::MailboxAddr server_;
  std::uint32_t owner_id_;
  core::Mailbox& scratch_;
  core::Mailbox& grants_;
};

}  // namespace nectar::nectarine
