#include "proto/datalink.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/priorities.hpp"
#include "net/topology.hpp"

namespace nectar::proto {
namespace {

/// Minimal protocol for exercising the datalink: collects received packets.
class TestClient : public DatalinkClient {
 public:
  TestClient(core::CabRuntime& rt, std::size_t hdr_bytes = 4)
      : rt_(rt), hdr_bytes_(hdr_bytes), input_(rt.create_mailbox("test-proto")) {}

  std::size_t header_bytes() const override { return hdr_bytes_; }
  core::Mailbox& input_mailbox() override { return input_; }

  void start_of_data(const core::Message& m, std::uint8_t src) override {
    (void)m;
    (void)src;
    start_count++;
    start_times.push_back(rt_.engine().now());
  }
  void end_of_data(core::Message m, std::uint8_t src) override {
    end_times.push_back(rt_.engine().now());
    srcs.push_back(src);
    std::vector<std::uint8_t> bytes(m.len);
    rt_.board().memory().read(m.data, bytes);
    received.emplace_back(bytes.begin(), bytes.end());
    input_.end_get(m);
  }

  core::CabRuntime& rt_;
  std::size_t hdr_bytes_;
  core::Mailbox& input_;
  int start_count = 0;
  std::vector<sim::SimTime> start_times;
  std::vector<sim::SimTime> end_times;
  std::vector<std::string> received;
  std::vector<std::uint8_t> srcs;
};

constexpr PacketType kTestType = static_cast<PacketType>(200);

struct TwoCabs {
  net::Network net;
  int a, b;
  std::unique_ptr<TestClient> client_a, client_b;

  TwoCabs() {
    int hub = net.add_hub();
    a = net.add_cab(hub, 0);
    b = net.add_cab(hub, 1);
    net.install_routes();
    client_a = std::make_unique<TestClient>(net.runtime(a));
    client_b = std::make_unique<TestClient>(net.runtime(b));
    net.datalink(a).register_client(kTestType, client_a.get());
    net.datalink(b).register_client(kTestType, client_b.get());
  }

  /// Stage payload bytes in a CAB's data memory and send them.
  void send(int from, int to, const std::string& header, const std::string& payload) {
    core::CabRuntime& rt = net.runtime(from);
    rt.fork_system("sender", [this, from, to, header, payload] {
      hw::CabAddr buf = rt_of(from).heap().alloc(payload.size() + 1);
      rt_of(from).board().memory().write(
          buf, std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()));
      std::vector<std::uint8_t> hdr(header.begin(), header.end());
      net.datalink(from).send(kTestType, to, hdr, buf, payload.size());
    });
  }
  core::CabRuntime& rt_of(int n) { return net.runtime(n); }
};

TEST(Datalink, DeliversPacketBetweenCabs) {
  TwoCabs t;
  t.send(t.a, t.b, "HD", "payload-bytes");
  t.net.run();
  ASSERT_EQ(t.client_b->received.size(), 1u);
  EXPECT_EQ(t.client_b->received[0], "HDpayload-bytes");  // proto hdr + payload
  EXPECT_EQ(t.client_b->srcs[0], t.a);
  EXPECT_EQ(t.net.datalink(t.a).packets_sent(), 1u);
  EXPECT_EQ(t.net.datalink(t.b).packets_received(), 1u);
}

TEST(Datalink, StartOfDataPrecedesEndOfData) {
  TwoCabs t;
  t.send(t.a, t.b, "HDRX", std::string(4000, 'x'));
  t.net.run();
  ASSERT_EQ(t.client_b->start_count, 1);
  ASSERT_EQ(t.client_b->end_times.size(), 1u);
  // The start-of-data upcall overlaps packet arrival: for a 4 KB packet at
  // 100 Mbit/s (~320 us serialization) it must run well before end-of-data.
  EXPECT_LT(t.client_b->start_times[0] + sim::usec(200), t.client_b->end_times[0]);
}

TEST(Datalink, ManyPacketsInOrder) {
  TwoCabs t;
  for (int i = 0; i < 10; ++i) t.send(t.a, t.b, "HP", "msg" + std::to_string(i));
  t.net.run();
  ASSERT_EQ(t.client_b->received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(t.client_b->received[static_cast<std::size_t>(i)], "HPmsg" + std::to_string(i));
  }
}

TEST(Datalink, BidirectionalTraffic) {
  TwoCabs t;
  t.send(t.a, t.b, "HX", "a-to-b");
  t.send(t.b, t.a, "HX", "b-to-a");
  t.net.run();
  ASSERT_EQ(t.client_b->received.size(), 1u);
  ASSERT_EQ(t.client_a->received.size(), 1u);
  EXPECT_EQ(t.client_a->received[0], "HXb-to-a");
}

TEST(Datalink, UnknownTypeDropped) {
  TwoCabs t;
  // Unregister on the receiver.
  t.net.datalink(t.b).register_client(kTestType, nullptr);
  t.send(t.a, t.b, "HZ", "nobody-home");
  t.net.run();
  EXPECT_TRUE(t.client_b->received.empty());
  EXPECT_EQ(t.net.datalink(t.b).dropped_no_client(), 1u);
}

TEST(Datalink, CorruptedFrameDroppedByCrc) {
  TwoCabs t;
  t.net.cab(t.a).out_link().set_corrupt_rate(1.0, 11);
  t.send(t.a, t.b, "HC", "damaged-in-transit");
  t.net.run();
  EXPECT_TRUE(t.client_b->received.empty());
  EXPECT_EQ(t.net.datalink(t.b).dropped_crc(), 1u);
  // The drop freed the receive buffer: heap back to just the mailbox cache.
  EXPECT_EQ(t.net.runtime(t.b).heap().bytes_in_use(),
            t.client_b->input_.cache_hits() > 0 ? 128u : 0u);
}

TEST(Datalink, SelfRouteThroughOwnHubPort) {
  TwoCabs t;
  t.send(t.a, t.a, "HS", "loop-to-self");
  t.net.run();
  ASSERT_EQ(t.client_a->received.size(), 1u);
  EXPECT_EQ(t.client_a->received[0], "HSloop-to-self");
}

TEST(Datalink, NoRouteThrows) {
  net::Network net;
  int hub = net.add_hub();
  int a = net.add_cab(hub, 0);
  // No install_routes() call.
  bool threw = false;
  net.runtime(a).fork_system("t", [&] {
    try {
      net.datalink(a).send(kTestType, 5, {}, hw::kDataBase, 0);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  net.run();
  EXPECT_TRUE(threw);
}

TEST(Datalink, MultiHubDelivery) {
  net::Network net;
  int h1 = net.add_hub();
  int h2 = net.add_hub();
  net.link_hubs(h1, 15, h2, 15);
  int a = net.add_cab(h1, 0);
  int b = net.add_cab(h2, 0);
  net.install_routes();
  EXPECT_EQ(net.route(a, b), (std::vector<std::uint8_t>{15, 0}));

  TestClient rx(net.runtime(b));
  net.datalink(b).register_client(kTestType, &rx);
  net.runtime(a).fork_system("s", [&] {
    hw::CabAddr buf = net.runtime(a).heap().alloc(5);
    net.runtime(a).board().memory().write(
        buf, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>("hello"), 5));
    net.datalink(a).send(kTestType, b, {'H', '2'}, buf, 5);
  });
  net.run();
  ASSERT_EQ(rx.received.size(), 1u);
  EXPECT_EQ(rx.received[0], "H2hello");
}

TEST(Datalink, SendCompletionCallbackRunsInInterruptContext) {
  TwoCabs t;
  bool fired = false;
  bool was_irq = false;
  core::CabRuntime& rt = t.net.runtime(t.a);
  rt.fork_system("s", [&] {
    hw::CabAddr buf = rt.heap().alloc(8);
    t.net.datalink(t.a).send(kTestType, t.b, {'H', 'H'}, buf, 8, [&] {
      fired = true;
      was_irq = rt.cpu().in_interrupt();
    });
  });
  t.net.run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(was_irq);
}

TEST(Datalink, OversizePacketRejected) {
  TwoCabs t;
  core::CabRuntime& rt = t.net.runtime(t.a);
  bool threw = false;
  rt.fork_system("s", [&] {
    try {
      t.net.datalink(t.a).send(kTestType, t.b, {}, hw::kDataBase, Datalink::kMaxPayload + 1);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  t.net.run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace nectar::proto
