#include "core/thread.hpp"

#include <cassert>

#include "core/cpu.hpp"
#include "obs/profiler.hpp"
#include "sim/costs.hpp"

namespace nectar::core {

void Mutex::lock() {
  Thread* self = cpu_.current_thread();
  assert(self != nullptr && !cpu_.in_interrupt() &&
         "Mutex is a thread-level primitive; interrupt handlers must use "
         "interrupt masking instead (paper §3.1)");
  obs::CostScope scope("sync/lock");
  cpu_.charge(sim::costs::kLockOp);
  while (owner_ != nullptr) {
    waiters_.push_back(self);
    cpu_.block();
  }
  owner_ = self;
}

bool Mutex::try_lock() {
  Thread* self = cpu_.current_thread();
  assert(self != nullptr && !cpu_.in_interrupt());
  obs::CostScope scope("sync/lock");
  cpu_.charge(sim::costs::kLockOp);
  if (owner_ != nullptr) return false;
  owner_ = self;
  return true;
}

void Mutex::unlock() {
  assert(owner_ == cpu_.current_thread() && "unlock by non-owner");
  obs::CostScope scope("sync/lock");
  cpu_.charge(sim::costs::kLockOp);
  owner_ = nullptr;
  if (!waiters_.empty()) {
    Thread* next = waiters_.front();
    waiters_.pop_front();
    cpu_.charge(sim::costs::kThreadWakeup);
    cpu_.wake(next);
  }
}

void CondVar::wait(Mutex& m) {
  Thread* self = cpu_.current_thread();
  assert(self != nullptr && !cpu_.in_interrupt());
  waiters_.push_back(self);
  m.unlock();
  cpu_.block();
  m.lock();
}

void CondVar::signal() {
  obs::CostScope scope("sync/cond");
  cpu_.charge(sim::costs::kCondSignal);
  if (waiters_.empty()) return;
  Thread* t = waiters_.front();
  waiters_.pop_front();
  cpu_.charge(sim::costs::kThreadWakeup);
  cpu_.wake(t);
}

void CondVar::broadcast() {
  obs::CostScope scope("sync/cond");
  cpu_.charge(sim::costs::kCondSignal);
  while (!waiters_.empty()) {
    Thread* t = waiters_.front();
    waiters_.pop_front();
    cpu_.charge(sim::costs::kThreadWakeup);
    cpu_.wake(t);
  }
}

}  // namespace nectar::core
