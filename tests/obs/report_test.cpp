#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace nectar::obs {
namespace {

TEST(Json, DumpAndParseRoundTrip) {
  json::Value o = json::Value::object();
  o.set("schema", "test");
  o.set("n", std::int64_t{-42});
  o.set("x", 2.5);
  o.set("flag", true);
  o.set("none", nullptr);
  json::Value arr = json::Value::array();
  arr.push("a\"b\\c\n");
  arr.push(std::int64_t{7});
  o.set("arr", std::move(arr));

  for (int indent : {-1, 2}) {
    json::Value back = json::Value::parse(o.dump(indent));
    EXPECT_EQ(back.find("schema")->as_string(), "test");
    EXPECT_EQ(back.find("n")->as_int(), -42);
    EXPECT_DOUBLE_EQ(back.find("x")->as_double(), 2.5);
    EXPECT_TRUE(back.find("flag")->as_bool());
    EXPECT_TRUE(back.find("none")->is_null());
    EXPECT_EQ(back.find("arr")->at(0).as_string(), "a\"b\\c\n");
    EXPECT_EQ(back.find("arr")->at(1).as_int(), 7);
  }
  // Objects keep insertion order — part of the determinism contract.
  EXPECT_EQ(o.members()[0].first, "schema");
  EXPECT_EQ(o.members()[5].first, "arr");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse("{"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("'single'"), std::runtime_error);
}

// Regression lock on json::escape: each escape class renders exactly as the
// JSON grammar requires, and hostile strings survive a report round trip.
TEST(Json, EscapeCoversEveryHostileClass) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb"), "a\\nb");
  EXPECT_EQ(json::escape("a\tb"), "a\\tb");
  EXPECT_EQ(json::escape("a\rb"), "a\\rb");
  EXPECT_EQ(json::escape(std::string_view("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(json::escape(std::string_view("a\x1f z", 4)), "a\\u001f z");
  // Already-escaped input is data, not markup: it escapes again.
  EXPECT_EQ(json::escape("a\\nb"), "a\\\\nb");
}

TEST(Report, HostileStringsSurviveRoundTrip) {
  const std::string hostile = "wl \"a\\b\"\nline2\ttab\x02";
  RunReport r("escape-check");
  r.param("label", hostile);
  r.add(hostile + ".p99", 1.25, "us");
  json::Value doc = json::Value::parse(r.to_json_string());
  EXPECT_EQ(doc.find("params")->find("label")->as_string(), hostile);
  const json::Value& row = doc.find("results")->at(0);
  EXPECT_EQ(row.find("name")->as_string(), hostile + ".p99");
  EXPECT_DOUBLE_EQ(row.find("value")->as_double(), 1.25);
}

TEST(Report, VersionedSchemaWithParamsAndResults) {
  RunReport r("table1-latency");
  r.param("message_bytes", 64);
  r.param("mode", "host-host");
  r.add("datagram_rtt", 325.5, "us");
  r.add("rmp_rtt", 674.0, "us");
  EXPECT_EQ(r.result_count(), 2u);

  json::Value doc = json::Value::parse(r.to_json_string());
  EXPECT_EQ(doc.find("schema")->as_string(), "nectar-bench-report");
  EXPECT_EQ(doc.find("version")->as_int(), RunReport::kVersion);
  EXPECT_EQ(doc.find("bench")->as_string(), "table1-latency");
  EXPECT_EQ(doc.find("clock")->as_string(), "simulated");
  EXPECT_EQ(doc.find("params")->find("message_bytes")->as_int(), 64);
  EXPECT_EQ(doc.find("params")->find("mode")->as_string(), "host-host");
  const json::Value* results = doc.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ(results->at(0).find("name")->as_string(), "datagram_rtt");
  EXPECT_DOUBLE_EQ(results->at(0).find("value")->as_double(), 325.5);
  EXPECT_EQ(results->at(0).find("unit")->as_string(), "us");
  EXPECT_FALSE(doc.has("metrics"));
}

TEST(Report, AttachedMetricsSnapshotIsEmbedded) {
  MetricsRegistry reg;
  reg.counter(0, "tcp", "segments_sent").inc(9);
  RunReport r("fig6-breakdown");
  r.add("total", 163.0, "us");
  r.attach_metrics(reg.snapshot());

  json::Value doc = json::Value::parse(r.to_json_string());
  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("schema")->as_string(), "nectar-metrics-snapshot");
  ASSERT_EQ(metrics->find("metrics")->size(), 1u);
  EXPECT_EQ(metrics->find("metrics")->at(0).find("value")->as_int(), 9);
}

TEST(Report, WriteProducesValidFile) {
  RunReport r("smoke");
  r.add("x", 1.0, "count");
  std::string path = ::testing::TempDir() + "nectar_report_test.json";
  ASSERT_TRUE(r.write(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  json::Value doc = json::Value::parse(ss.str());
  EXPECT_EQ(doc.find("bench")->as_string(), "smoke");
  std::remove(path.c_str());

  EXPECT_FALSE(r.write("/nonexistent-dir/zzz/report.json"));
}

}  // namespace
}  // namespace nectar::obs
