#include "hw/dma.hpp"

#include <algorithm>
#include <stdexcept>

#include "hw/crc.hpp"
#include "obs/causal.hpp"
#include "obs/profiler.hpp"
#include "sim/costs.hpp"

namespace nectar::hw {

DmaController::DmaController(sim::Engine& engine, CabMemory& memory, FiberInFifo& in_fifo,
                             FiberLink& out_link, VmeBus* vme)
    : engine_(engine), memory_(memory), in_fifo_(in_fifo), out_link_(out_link), vme_(vme) {}

void DmaController::check_dma_range(CabAddr a, std::size_t len) const {
  if (!CabMemory::in_data_region(a, len)) {
    throw std::logic_error("DmaController: DMA is supported for data memory only (paper §2.2)");
  }
}

void DmaController::start_recv(CabAddr dst, std::size_t skip, RecvDone done) {
  if (!in_fifo_.has_frame()) throw std::logic_error("DmaController::start_recv: FIFO empty");
  if (recv_busy_) throw std::logic_error("DmaController::start_recv: channel busy");
  recv_busy_ = true;

  const FiberInFifo::ArrivedFrame& front = in_fifo_.front();
  if (front.frame.trace.valid() && dst != kDiscard) {
    if (auto* ct = obs::CausalTracer::active()) ct->stage(front.frame.trace, "rx.dma");
  }
  std::size_t payload_len = front.frame.payload.size();
  std::size_t copy_len = payload_len > skip ? payload_len - skip : 0;
  if (dst != kDiscard && copy_len > 0) check_dma_range(dst, copy_len);

  // The DMA streams bytes into memory as they arrive (cut-through): the
  // simulation deposits them now so protocol upcalls can read header bytes
  // early, but consumers must respect the arrival times exposed by the FIFO
  // (payload_available_at) — the datalink layer stalls on those before
  // reading. The CRC verdict exists only once the last byte has arrived.
  if (dst != kDiscard && copy_len > 0) {
    memory_.write(dst, front.frame.payload.bytes().subspan(skip, copy_len));
  }

  // Low-level flow control: the channel waits for the last byte to arrive
  // (if still in flight), then finishes draining the FIFO.
  sim::SimTime finish = std::max(front.last_byte, engine_.now() + sim::costs::kDmaSetup) +
                        sim::costs::kFifoDrain;

  if (profiler_ != nullptr && profiler_->enabled()) {
    profiler_->record_occupancy(profile_name_, "recv", finish - engine_.now());
  }

  recv_done_ = std::move(done);
  engine_.schedule_at(finish, [this] { finish_recv(); });
}

void DmaController::finish_recv() {
  FiberInFifo::ArrivedFrame af = in_fifo_.pop();
  bool crc_ok = Crc32::compute(af.frame.payload) == af.frame.crc;
  ++recv_frames_;
  if (!crc_ok) ++recv_crc_errors_;
  recv_busy_ = false;
  // Move the completion out first: it may start the next receive.
  RecvDone done = std::move(recv_done_);
  done(std::move(af), crc_ok);
}

void DmaController::start_send(RouteRef route, std::span<const std::uint8_t> header, CabAddr src,
                               std::size_t len, SendCallback done, int src_node,
                               obs::TraceContext trace) {
  if (len > 0) check_dma_range(src, len);
  Frame f;
  f.route = std::move(route);
  f.trace = trace;
  if (trace.valid()) {
    if (auto* ct = obs::CausalTracer::active()) ct->stage(trace, "tx.dma");
  }
  // Gather [header][payload] into one pooled buffer: the header bytes come
  // from the CPU's composition buffer, the payload from CAB data memory.
  f.payload = PooledBytes(header.size() + len);
  std::copy(header.begin(), header.end(), f.payload.begin());
  if (len > 0) {
    memory_.read(src, f.payload.bytes().subspan(header.size(), len));
  }
  f.crc = Crc32::compute(f.payload);  // hardware CRC, zero CPU cost
  f.id = next_frame_id_++;
  f.src_node = src_node;
  ++send_frames_;

  // The memory->FIFO leg streams at least at fiber rate and overlaps the
  // transmission; a fixed setup charge covers channel programming. The frame
  // waits in the controller (FIFO order matches event order at equal times).
  if (profiler_ != nullptr && profiler_->enabled()) {
    profiler_->record_occupancy(profile_name_, "send", sim::costs::kDmaSetup);
  }
  send_queue_.push_back(PendingSend{std::move(f), std::move(done)});
  engine_.schedule_in(sim::costs::kDmaSetup, [this] { flush_send(); });
}

void DmaController::start_send_mcast(McastRef mcast, std::span<const std::uint8_t> header,
                                     CabAddr src, std::size_t len, SendCallback done,
                                     int src_node, obs::TraceContext trace) {
  if (!mcast.valid())
    throw std::logic_error("DmaController::start_send_mcast: empty multicast tree");
  if (len > 0) check_dma_range(src, len);
  Frame f;
  f.mcast = std::move(mcast);
  f.mcast_node = 0;
  f.trace = trace;
  if (trace.valid()) {
    if (auto* ct = obs::CausalTracer::active()) ct->stage(trace, "tx.dma");
  }
  f.payload = PooledBytes(header.size() + len);
  std::copy(header.begin(), header.end(), f.payload.begin());
  if (len > 0) {
    memory_.read(src, f.payload.bytes().subspan(header.size(), len));
  }
  f.crc = Crc32::compute(f.payload);  // hardware CRC, zero CPU cost
  f.id = next_frame_id_++;
  f.src_node = src_node;
  ++send_frames_;

  if (profiler_ != nullptr && profiler_->enabled()) {
    profiler_->record_occupancy(profile_name_, "send", sim::costs::kDmaSetup);
  }
  send_queue_.push_back(PendingSend{std::move(f), std::move(done)});
  engine_.schedule_in(sim::costs::kDmaSetup, [this] { flush_send(); });
}

void DmaController::flush_send() {
  PendingSend p = std::move(send_queue_.front());
  send_queue_.pop_front();
  out_link_.submit(std::move(p.frame), std::move(p.done));
}

void DmaController::start_vme_to_cab(std::span<const std::uint8_t> host_src, CabAddr dst,
                                     std::function<void()> done) {
  if (vme_ == nullptr) throw std::logic_error("DmaController: no VME bus attached");
  check_dma_range(dst, host_src.size());
  ++vme_transfers_;
  vme_->dma_transfer(host_src.size(), [this, host_src, dst, done = std::move(done)] {
    memory_.write(dst, host_src);
    done();
  });
}

void DmaController::start_cab_to_vme(CabAddr src, std::span<std::uint8_t> host_dst,
                                     std::function<void()> done) {
  if (vme_ == nullptr) throw std::logic_error("DmaController: no VME bus attached");
  check_dma_range(src, host_dst.size());
  ++vme_transfers_;
  vme_->dma_transfer(host_dst.size(), [this, src, host_dst, done = std::move(done)] {
    memory_.read(src, host_dst);
    done();
  });
}

}  // namespace nectar::hw
