// Parallel-engine scaling curve: one 512-node fat-tree soak run at shard
// counts 1/2/4/8 under the conservative-parallel engine (sim::ParallelEngine,
// docs/ARCHITECTURE.md "Sharded parallel simulation").
//
// Two speedup notions are reported per shard count:
//   * ideal_speedup — total events / critical-path events, where the
//     critical path sums the busiest shard's event count over every
//     synchronization window. This is the speedup a K-core host cannot
//     exceed with this partition and lookahead, it is a pure function of
//     (spec, seed, shards), and it is what CI's schema gate checks (>= 3x
//     at 8 shards).
//   * wall_ms — host wall-clock for the run. Informative only: CI builders
//     (and this curve's committed run) may have a single core, where the
//     barrier overhead makes wall time *worse* with more shards. The
//     deterministic rows are the contract; wall numbers are never compared.
//
// The traffic pattern strides messages exactly one leaf over, so every
// message crosses the spine (the hardest case for a sharded simulator: all
// traffic rides the cross-shard mailboxes).

#include <chrono>

#include "common.hpp"
#include "scenario/engine.hpp"

namespace nectar::bench {
namespace {

constexpr const char* kConfig = R"(
[scenario]
name = parallel512
seed = 1990
duration = 200ms

[topology]
kind = fat_tree
nodes = 512
hub_ports = 16
spines = 4
trunk_propagation = 5us
# Spread cross-leaf routes across all 4 spines (hash of the hub pair).
# Without it every pair tie-breaks to spine 0, whose shard becomes the
# critical path and caps ideal speedup near 2.8x at 8 shards.
route_spread = yes

[parallel]
shards = 1
partition = block

# Open-loop UDP, destinations one leaf over (stride 12 = the leaf width):
# every message transits leaf -> spine -> leaf, so shard boundaries see the
# full offered load.
[workload]
name = udp-cross
proto = udp
mode = open
users = 50
rate = 2
size_min = 64
size_max = 1024
stride = 12

# A closed-loop RMP population two leaves over: request and ACK both cross
# the spine, adding lockstep request/response traffic to the aggregate.
[workload]
name = rmp-cross
proto = rmp
mode = closed
users = 1
think = 10ms
size = 256
stride = 24
)";

struct Point {
  int shards;
  double wall_ms;
  std::uint64_t total, critical, windows, cross;
  std::uint64_t delivered;
};

Point run_at(int shards) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kConfig));
  spec.parallel.shards = shards;
  scenario::Scenario sc(std::move(spec));
  auto t0 = std::chrono::steady_clock::now();
  sc.run();
  auto t1 = std::chrono::steady_clock::now();

  Point p;
  p.shards = shards;
  p.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const sim::ParallelEngine& par = sc.net().parallel();
  p.total = par.total_events();
  p.critical = par.critical_path_events();
  p.windows = par.windows();
  p.cross = par.cross_events();
  p.delivered = 0;
  for (const auto& w : sc.workloads()) p.delivered += w->delivered();
  return p;
}

int run(const BenchOptions& options) {
  print_header("parallel engine scaling, 512-node fat-tree");
  std::printf("%7s %12s %14s %16s %8s %12s %10s %9s\n", "shards", "events", "critical-path",
              "ideal-speedup", "windows", "cross-events", "delivered", "wall ms");

  obs::RunReport report("parallel");
  report.param("topology", "fat_tree");
  report.param("nodes", 512);
  report.param("duration_ms", 200);
  report.param("partition", "block");

  std::uint64_t base_delivered = 0;
  for (int shards : {1, 2, 4, 8}) {
    Point p = run_at(shards);
    double ideal = static_cast<double>(p.total) / static_cast<double>(p.critical);
    std::printf("%7d %12llu %14llu %15.2fx %8llu %12llu %10llu %9.0f\n", p.shards,
                static_cast<unsigned long long>(p.total),
                static_cast<unsigned long long>(p.critical), ideal,
                static_cast<unsigned long long>(p.windows),
                static_cast<unsigned long long>(p.cross),
                static_cast<unsigned long long>(p.delivered), p.wall_ms);
    if (shards == 1) {
      base_delivered = p.delivered;
    } else if (p.delivered != base_delivered) {
      std::fprintf(stderr, "error: delivered count changed with shard count (%llu vs %llu)\n",
                   static_cast<unsigned long long>(p.delivered),
                   static_cast<unsigned long long>(base_delivered));
      return 1;
    }
    std::string k = "parallel.s" + std::to_string(shards);
    report.add(k + ".total_events", static_cast<double>(p.total), "events");
    report.add(k + ".critical_path_events", static_cast<double>(p.critical), "events");
    report.add(k + ".ideal_speedup", ideal, "ratio");
    report.add(k + ".windows", static_cast<double>(p.windows), "count");
    report.add(k + ".cross_events", static_cast<double>(p.cross), "events");
    report.add(k + ".delivered", static_cast<double>(p.delivered), "msgs");
    report.add(k + ".wall_ms", p.wall_ms, "ms");
  }

  if (!options.telemetry_path.empty()) {
    // One extra telemetered run at 8 shards, separate from the curve above
    // so the committed BENCH_parallel.json rows (and the delivered-invariance
    // check) are untouched. The artifact is restricted to the sim.parallel
    // series — shard<i>.events per window IS the shard-imbalance trace; at
    // 512 nodes the unfiltered registry would be ~60k series. The
    // conservation auditor rides along and fails the run loudly on any
    // violated invariant.
    scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kConfig));
    spec.parallel.shards = 8;
    spec.telemetry.enabled = true;
    spec.telemetry.interval = options.telemetry_interval;
    spec.telemetry.artifact = options.telemetry_path;
    spec.telemetry.include = {"sim.parallel"};
    scenario::Scenario sc(std::move(spec));
    try {
      sc.run();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("\ntelemetry (8 shards): %zu samples, %zu series -> %s\n",
                sc.sampler()->samples(), sc.sampler()->series_count(),
                options.telemetry_path.c_str());
  }

  finish_report(options, report);
  return 0;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  return nectar::bench::run(nectar::bench::parse_options(argc, argv));
}
