#include "obs/latency.hpp"

#include <bit>

namespace nectar::obs {

int LatencyHistogram::bucket_index(std::int64_t v) {
  if (v < (std::int64_t{1} << kMinOctave)) return 0;  // underflow bucket
  int octave = std::bit_width(static_cast<std::uint64_t>(v)) - 1;  // 2^octave <= v
  if (octave >= kMaxOctave) return kBuckets - 1;                   // overflow bucket
  int sub = static_cast<int>((v - (std::int64_t{1} << octave)) >> (octave - kSubBits));
  return (octave - kMinOctave) * kSub + sub + 1;
}

std::int64_t LatencyHistogram::bucket_bound(int i) {
  if (i <= 0) return (std::int64_t{1} << kMinOctave) - 1;
  if (i >= kBuckets - 1) return INT64_MAX;
  int octave = kMinOctave + (i - 1) / kSub;
  int sub = (i - 1) % kSub;
  return (std::int64_t{1} << octave) +
         (static_cast<std::int64_t>(sub + 1) << (octave - kSubBits)) - 1;
}

void LatencyHistogram::observe(sim::SimTime v) {
  if (v < 0) v = 0;
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
  ++count_;
  sum_ += v;
  if (count_ == 1 || v < min_) min_ = v;
  if (v > max_) max_ = v;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);
  double rank = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= rank) {
      // Interpolate inside the bucket; clamp to observed extremes so a
      // one-sample histogram reports that sample, not a bucket edge.
      double lo = i == 0 ? 0.0 : static_cast<double>(bucket_bound(i - 1)) + 1.0;
      double hi = static_cast<double>(i == kBuckets - 1 ? max_ : bucket_bound(i));
      double frac = (rank - static_cast<double>(cum)) / static_cast<double>(n);
      double v = lo + (hi - lo) * frac;
      if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
      if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
      return v;
    }
    cum += n;
  }
  return static_cast<double>(max_);
}

void LatencyHistogram::merge(const LatencyHistogram& o) {
  if (o.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] += o.buckets_[static_cast<std::size_t>(i)];
  }
  if (count_ == 0 || o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
  count_ += o.count_;
  sum_ += o.sum_;
}

json::Value LatencyHistogram::to_json() const {
  json::Value v = json::Value::object();
  v.set("count", count_);
  v.set("sum_ns", sum_);
  v.set("min_ns", static_cast<std::int64_t>(min()));
  v.set("max_ns", static_cast<std::int64_t>(max_));
  v.set("mean_us", mean() / 1000.0);
  v.set("p50_us", p50() / 1000.0);
  v.set("p90_us", p90() / 1000.0);
  v.set("p99_us", p99() / 1000.0);
  v.set("p999_us", p999() / 1000.0);
  return v;
}

}  // namespace nectar::obs
