// Definitions of the Nectarine coll_* surface (declared in
// nectarine/cab_api.hpp and nectarine/nectarine.hpp against forward
// declarations). They live here, in the collective library, so Nectarine
// itself has no build dependency on src/coll — the same one-way layering as
// every other subsystem pair.

#include <stdexcept>

#include "coll/engine.hpp"
#include "coll/host.hpp"
#include "nectarine/cab_api.hpp"

namespace nectar::nectarine {

bool CabNectarine::coll_barrier(std::uint16_t group) {
  if (coll_ == nullptr) throw std::logic_error("CabNectarine: no collective engine attached");
  return coll_->barrier(group);
}

bool CabNectarine::coll_bcast(std::uint16_t group, std::span<std::uint8_t> data) {
  if (coll_ == nullptr) throw std::logic_error("CabNectarine: no collective engine attached");
  return coll_->bcast(group, data);
}

bool CabNectarine::coll_reduce(std::uint16_t group, coll::ReduceOp op,
                               std::uint64_t contribution, std::uint64_t* result) {
  if (coll_ == nullptr) throw std::logic_error("CabNectarine: no collective engine attached");
  return coll_->reduce(group, op, contribution, result);
}

bool HostNectarine::coll_barrier(std::uint16_t group) {
  if (coll_ == nullptr || coll_->group_id() != group) {
    throw std::logic_error("HostNectarine: no collective baseline attached for group " +
                           std::to_string(group));
  }
  return coll_->barrier();
}

bool HostNectarine::coll_bcast(std::uint16_t group, std::span<std::uint8_t> data) {
  if (coll_ == nullptr || coll_->group_id() != group) {
    throw std::logic_error("HostNectarine: no collective baseline attached for group " +
                           std::to_string(group));
  }
  return coll_->bcast(data);
}

bool HostNectarine::coll_reduce(std::uint16_t group, coll::ReduceOp op,
                                std::uint64_t contribution, std::uint64_t* result) {
  if (coll_ == nullptr || coll_->group_id() != group) {
    throw std::logic_error("HostNectarine: no collective baseline attached for group " +
                           std::to_string(group));
  }
  return coll_->reduce(op, contribution, result);
}

}  // namespace nectar::nectarine
