#include "nproto/rmp.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/cpu.hpp"
#include "obs/causal.hpp"
#include "obs/profiler.hpp"
#include "sim/costs.hpp"

namespace nectar::nproto {

namespace costs = sim::costs;

Rmp::Rmp(proto::Datalink& dl)
    : dl_(dl),
      input_(dl.runtime().create_mailbox("rmp-input")),
      metrics_reg_(dl.runtime().metrics()) {
  dl_.register_client(proto::PacketType::Rmp, this);

  int node = dl_.node_id();
  metrics_reg_.probe(node, "rmp", "messages_sent",
                     [this] { return static_cast<std::int64_t>(sent_); });
  metrics_reg_.probe(node, "rmp", "messages_delivered",
                     [this] { return static_cast<std::int64_t>(delivered_); });
  metrics_reg_.probe(node, "rmp", "retransmissions",
                     [this] { return static_cast<std::int64_t>(retransmissions_); });
  metrics_reg_.probe(node, "rmp", "duplicates_dropped",
                     [this] { return static_cast<std::int64_t>(dups_); });
  metrics_reg_.probe(node, "rmp", "acks_sent",
                     [this] { return static_cast<std::int64_t>(acks_sent_); });
  metrics_reg_.probe(node, "rmp", "dropped_no_mailbox",
                     [this] { return static_cast<std::int64_t>(dropped_no_mailbox_); });
}

void Rmp::send(core::MailboxAddr dst, core::Message data, bool free_when_acked,
               std::function<void()> on_acked, obs::TraceContext tctx,
               std::span<const std::uint8_t> prefix) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("rmp/send");
  cpu.charge(costs::kNectarProtoSend);
  if (prefix.size() > kMaxPrefix) {
    throw std::length_error("Rmp::send: prefix of " + std::to_string(prefix.size()) +
                            " bytes exceeds kMaxPrefix (" + std::to_string(kMaxPrefix) + ")");
  }
  if (tctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->stage(tctx, "tx.rmp.queue", "node" + std::to_string(dl_.node_id()));
    }
  }
  // Send state is shared with the interrupt-level ACK/timeout handlers, so
  // manipulate it under the interrupt mask (§3.1 discipline).
  core::InterruptGuard g(cpu);
  SendChannel& ch = send_channels_[dst.node];
  Pending p{data, dst.index, free_when_acked, std::move(on_acked), tctx, {}, 0};
  std::copy(prefix.begin(), prefix.end(), p.prefix.begin());
  p.prefix_len = static_cast<std::uint8_t>(prefix.size());
  ch.queue.push_back(std::move(p));
  if (!ch.outstanding) {
    ch.outstanding = true;
    transmit_head(dst.node);
  }
}

void Rmp::transmit_head(int node) {
  SendChannel& ch = send_channels_[node];
  const Pending& p = ch.queue.front();

  proto::NectarHeader h;
  h.dst_mailbox = p.dst_index;
  h.src_node = static_cast<std::uint8_t>(dl_.node_id());
  h.flags = kFlagData;
  h.seq = ch.next_seq;
  h.length = static_cast<std::uint16_t>(p.msg.len + p.prefix_len);
  proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
  // Innermost first: the upper layer's prefix rides directly in front of the
  // payload, then the RMP header, then (in dl_.send) the datalink header.
  if (p.prefix_len > 0) {
    std::span<std::uint8_t> dst = hdr->push_front(p.prefix_len);
    std::copy(p.prefix.begin(), p.prefix.begin() + p.prefix_len, dst.begin());
  }
  h.serialize(hdr->push_front(proto::NectarHeader::kSize));

  ++sent_;
  NECTAR_TRACE(runtime().trace_mark("rmp.xmit"));
  if (p.ctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->stage(p.ctx, "tx.rmp", "node" + std::to_string(dl_.node_id()));
    }
  }
  dl_.send(proto::PacketType::Rmp, node, std::move(hdr), p.msg.data, p.msg.len, {}, p.ctx);

  core::Cpu& cpu = runtime().cpu();
  if (ch.timer_set) cpu.cancel_timer(ch.timer);
  ch.timer_set = true;
  ch.timer = cpu.set_timer(runtime().engine().now() + kRetransmitInterval,
                           [this, node] { on_timeout(node); });
}

void Rmp::record_event(const char* kind, int peer, std::uint16_t seq) {
  if (!record_events_ || events_.size() >= kEventCap) return;
  events_.push_back(RmpEvent{runtime().engine().now(), kind, peer, seq});
}

void Rmp::on_timeout(int node) {
  SendChannel& ch = send_channels_[node];
  if (!ch.timer_set || !ch.outstanding) return;
  ch.timer_set = false;
  ++retransmissions_;
  record_event("retransmit", node, ch.next_seq);
  if (const Pending& p = ch.queue.front(); p.ctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) ct->annotate(p.ctx, "rmp.retx");
  }
  transmit_head(node);
}

void Rmp::handle_ack(int node, std::uint16_t seq) {
  SendChannel& ch = send_channels_[node];
  if (!ch.outstanding || seq != ch.next_seq) return;  // stale or duplicate ACK
  core::Cpu& cpu = runtime().cpu();
  if (ch.timer_set) {
    cpu.cancel_timer(ch.timer);
    ch.timer_set = false;
  }
  Pending p = std::move(ch.queue.front());
  ch.queue.pop_front();
  ++ch.next_seq;
  ch.outstanding = false;
  if (p.free_when_acked) input_.end_get(p.msg);
  if (p.on_acked) p.on_acked();
  if (!ch.queue.empty()) {
    ch.outstanding = true;
    transmit_head(node);
  }
  // Wake pacing/drain waiters on every acknowledgment; they re-check their
  // own predicates.
  for (core::Thread* t : ch.drain_waiters) t->cpu().wake(t);
  ch.drain_waiters.clear();
}

void Rmp::wait_queue_below(int node, std::size_t n) {
  core::Cpu& cpu = runtime().cpu();
  core::InterruptGuard g(cpu);
  SendChannel& ch = send_channels_[node];
  while (ch.queue.size() >= n) {
    record_event("window_stall", node, 0);
    ch.drain_waiters.push_back(cpu.current_thread());
    cpu.block_unmasked();
  }
}

std::size_t Rmp::queued_to(int node) const {
  auto it = send_channels_.find(node);
  return it == send_channels_.end() ? 0 : it->second.queue.size();
}

void Rmp::wait_acked(int node) {
  core::Cpu& cpu = runtime().cpu();
  core::InterruptGuard g(cpu);
  SendChannel& ch = send_channels_[node];
  while (ch.outstanding || !ch.queue.empty()) {
    ch.drain_waiters.push_back(cpu.current_thread());
    cpu.block_unmasked();
  }
}

void Rmp::send_ack(int node, std::uint16_t seq) {
  proto::NectarHeader h;
  h.src_node = static_cast<std::uint8_t>(dl_.node_id());
  h.flags = kFlagAck;
  h.seq = seq;
  h.length = 0;
  proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
  h.serialize(hdr->push_front(proto::NectarHeader::kSize));
  ++acks_sent_;
  NECTAR_TRACE(runtime().trace_mark("rmp.ack"));
  dl_.send(proto::PacketType::Rmp, node, std::move(hdr), hw::kDataBase, 0);
}

void Rmp::end_of_data(core::Message m, std::uint8_t src_node) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("rmp/recv");
  cpu.charge(costs::kNectarProtoRecv);
  obs::CausalTracer* ct = obs::CausalTracer::active();
  obs::TraceContext rctx = ct != nullptr ? ct->rx_context() : obs::TraceContext{};
  if (ct != nullptr && rctx.valid()) {
    ct->stage(rctx, "rx.rmp", "node" + std::to_string(dl_.node_id()));
  }

  if (m.len < proto::NectarHeader::kSize) {
    input_.end_get(m);
    return;
  }
  proto::NectarHeader h = proto::NectarHeader::parse(
      runtime().board().memory().view(m.data, proto::NectarHeader::kSize));

  if (h.flags == kFlagAck) {
    input_.end_get(m);
    handle_ack(src_node, h.seq);
    return;
  }

  RecvChannel& rc = recv_channels_[src_node];
  if (h.seq != rc.expected_seq) {
    // Stop-and-wait: this can only be a retransmission of the previous
    // message whose ACK was lost. Re-acknowledge and drop.
    ++dups_;
    input_.end_get(m);
    send_ack(src_node, h.seq);
    return;
  }

  core::Mailbox* dst = runtime().find_mailbox(h.dst_mailbox);
  if (dst == nullptr) {
    // Undeliverable; acknowledge anyway so the sender does not retry forever.
    ++dropped_no_mailbox_;
    input_.end_get(m);
    send_ack(src_node, h.seq);
    ++rc.expected_seq;
    return;
  }
  ++delivered_;
  NECTAR_TRACE(runtime().trace_mark("rmp.deliver"));
  ++rc.expected_seq;
  core::Message payload = core::Mailbox::adjust_prefix(m, proto::NectarHeader::kSize);
  if (ct != nullptr && rctx.valid()) {
    ct->stage(rctx, "mbox.wait", "node" + std::to_string(dl_.node_id()));
  }
  input_.enqueue(payload, *dst);
  send_ack(src_node, h.seq);
}

}  // namespace nectar::nproto
