#pragma once

// Collective workload driver ([collectives] INI section): every node of the
// scenario joins one group and loops the selected operation — barrier,
// broadcast, or reduce — either on the CAB-resident engine (src/coll, the
// tentpole) or on the host-level baseline (each message taxed with a driver
// interrupt, a process wakeup, and VME programmed I/O). The two modes run
// the same group shape over the same topology, which is exactly the
// comparison bench_collectives sweeps.
//
// Results are verified in-loop: broadcast receivers check the payload
// pattern against what the root wrote, reduce callers check the combined
// value against the closed-form expectation; mismatches count as
// coll.data_errors in the report instead of aborting the run. Everything
// reported is a function of simulated execution only — no wall clock.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coll/engine.hpp"
#include "coll/host.hpp"
#include "host/driver.hpp"
#include "host/process.hpp"
#include "nectarine/cab_api.hpp"
#include "nectarine/nectarine.hpp"
#include "net/system.hpp"
#include "obs/report.hpp"

namespace nectar::scenario {

struct CollectivesSpec {
  bool enabled = false;
  std::string mode = "cab";        ///< "cab" (engine) | "host" (baseline; needs with_vme)
  std::string op = "barrier";      ///< "barrier" | "bcast" | "reduce"
  std::string algorithm = "tree";  ///< "tree" | "dissemination" (barrier only)
  std::string reduce = "sum";      ///< "sum" | "min" | "max"
  std::int64_t payload = 64;       ///< bcast payload bytes
  std::int64_t iterations = 0;     ///< ops per node; 0 = loop until the run ends
  sim::SimTime interval = 0;       ///< pause between consecutive ops
  std::int64_t fanout = 2;         ///< tree arity
  sim::SimTime timeout = sim::msec(50);
  sim::SimTime retransmit = sim::msec(2);
  bool multicast = true;  ///< cab mode: hand the HUB a distribution tree

  /// Reject typos and bad combinations at parse time.
  void validate() const;
};

/// Builds the per-node collective stacks and forks one worker per node.
/// Construct after the topology and protocol stacks exist, before run().
class CollectiveDriver {
 public:
  /// The single group every scenario collective runs in.
  static constexpr std::uint16_t kGroupId = 1;

  CollectiveDriver(net::Network& net, std::vector<net::NodeStack*> stacks,
                   const CollectivesSpec& spec);

  CollectiveDriver(const CollectiveDriver&) = delete;
  CollectiveDriver& operator=(const CollectiveDriver&) = delete;

  const CollectivesSpec& spec() const { return spec_; }

  /// The CAB engine on `node` (cab mode), or nullptr in host mode.
  coll::CollectiveEngine* engine(int node);
  /// The host baseline on `node` (host mode), or nullptr in cab mode.
  coll::HostCollective* host(int node);

  /// Completed operations on the slowest member — the number of collectives
  /// the whole group finished.
  std::uint64_t rounds_completed() const;
  std::uint64_t data_errors() const;

  /// coll.* rows: counters summed over members, the selected op's latency
  /// histograms merged across members, and the HUB replication gauges.
  void report_into(obs::RunReport& rep);

 private:
  enum class Op : std::uint8_t { Barrier, Bcast, Reduce };

  struct CabNode {
    std::unique_ptr<coll::CollectiveEngine> engine;
    std::unique_ptr<nectarine::CabNectarine> nin;
  };
  struct HostNode {
    std::unique_ptr<host::Host> host;
    std::unique_ptr<host::CabDriver> driver;
    std::unique_ptr<nectarine::HostNectarine> nin;
    std::unique_ptr<coll::HostCollective> hc;  // last: references nin
  };

  coll::GroupSpec make_group_spec() const;
  void worker_loop(int node);
  /// One collective op through the node's Nectarine surface; false = the
  /// group failed (cab mode timeout) and the worker should stop.
  bool run_one(int node, std::int64_t iter, std::vector<std::uint8_t>& buf);

  static std::uint8_t pattern_byte(std::int64_t iter, std::size_t offset);
  std::uint64_t contribution_of(int rank, std::int64_t iter) const;
  std::uint64_t expected_reduce(std::int64_t iter) const;

  net::Network& net_;
  std::vector<net::NodeStack*> stacks_;
  CollectivesSpec spec_;
  Op op_ = Op::Barrier;
  coll::ReduceOp rop_ = coll::ReduceOp::Sum;

  std::vector<CabNode> cab_;
  std::vector<HostNode> host_;

  // Worker-written, one slot per node (shard-safe: a node only writes its
  // own slot; readers run after the simulation stops).
  std::vector<std::uint64_t> iters_done_;
  std::vector<std::uint64_t> data_errors_;
};

}  // namespace nectar::scenario
