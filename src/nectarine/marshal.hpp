#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mailbox.hpp"
#include "core/runtime.hpp"

namespace nectar::nectarine {

/// Presentation-layer marshaling (paper §5.3): "Research is under way to use
/// the CAB to offload presentation layer functionality, such as the
/// marshaling and unmarshaling of data required by remote procedure call
/// systems" (referencing Siegel & Cooper's OSI presentation-layer work).
///
/// An XDR-style self-describing encoding written directly into a mailbox
/// message in CAB memory: 4-byte tags, big-endian scalars, length-prefixed
/// opaque/strings, all fields padded to 4 bytes. Every encode/decode charges
/// per-byte CPU cost to whichever processor runs it — which is the entire
/// point of the offload: run it on the CAB and the host never pays it.
class Marshaller {
 public:
  /// Marshaling cost on the executing CPU (ns/byte) — the presentation
  /// layer's per-byte tax that §5.3 proposes moving off the host.
  static constexpr sim::SimTime kCostPerByte = 180;

  enum Tag : std::uint32_t {
    kTagU32 = 1,
    kTagI64 = 2,
    kTagString = 3,
    kTagOpaque = 4,
    kTagArrayU32 = 5,
  };

  /// Encoder building into CAB memory at [m.data, m.data+m.len).
  class Encoder {
   public:
    Encoder(core::CabRuntime& rt, core::Message m);

    Encoder& put_u32(std::uint32_t v);
    Encoder& put_i64(std::int64_t v);
    Encoder& put_string(const std::string& s);
    Encoder& put_opaque(std::span<const std::uint8_t> bytes);
    Encoder& put_array_u32(std::span<const std::uint32_t> values);

    /// The message adjusted (in place) to the encoded length.
    core::Message finish();
    std::uint32_t bytes_used() const { return offset_; }

   private:
    void raw32(std::uint32_t v);
    void raw_bytes(std::span<const std::uint8_t> bytes);
    void charge(std::size_t bytes);

    core::CabRuntime& rt_;
    core::Message m_;
    std::uint32_t offset_ = 0;
  };

  /// Decoder over a received message. Tag mismatches throw — a marshaling
  /// bug is a programming error, not a runtime condition.
  class Decoder {
   public:
    Decoder(core::CabRuntime& rt, const core::Message& m);

    std::uint32_t get_u32();
    std::int64_t get_i64();
    std::string get_string();
    std::vector<std::uint8_t> get_opaque();
    std::vector<std::uint32_t> get_array_u32();

    bool done() const { return offset_ >= m_.len; }
    std::uint32_t remaining() const { return m_.len - offset_; }

   private:
    std::uint32_t raw32();
    void expect(Tag t);
    void charge(std::size_t bytes);

    core::CabRuntime& rt_;
    const core::Message& m_;
    std::uint32_t offset_ = 0;
  };

  /// Conservative size bound for an argument list (for Begin_Put).
  static std::uint32_t string_size(const std::string& s) {
    return 8 + ((static_cast<std::uint32_t>(s.size()) + 3) & ~3u);
  }
  static std::uint32_t opaque_size(std::size_t n) {
    return 8 + ((static_cast<std::uint32_t>(n) + 3) & ~3u);
  }
};

}  // namespace nectar::nectarine
