#include "hw/hub.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/causal.hpp"
#include "obs/metrics.hpp"

namespace nectar::hw {

Hub::Hub(sim::Engine& engine, std::string name, int num_ports, double bits_per_sec,
         sim::SimTime setup)
    : engine_(engine), name_(std::move(name)), rate_(bits_per_sec), setup_(setup) {
  if (num_ports <= 0) throw std::invalid_argument("Hub: need at least one port");
  inputs_.reserve(static_cast<std::size_t>(num_ports));
  for (int i = 0; i < num_ports; ++i) inputs_.push_back(std::make_unique<InputPort>(*this, i));
  outputs_.resize(static_cast<std::size_t>(num_ports));
}

FrameSink* Hub::input(int port) {
  if (port < 0 || port >= num_ports()) throw std::out_of_range("Hub::input: bad port");
  return inputs_[static_cast<std::size_t>(port)].get();
}

void Hub::attach_output(int port, FrameSink* sink, sim::SimTime propagation, bool defer_offer) {
  if (port < 0 || port >= num_ports()) throw std::out_of_range("Hub::attach_output: bad port");
  OutputPort& out = outputs_[static_cast<std::size_t>(port)];
  out.sink = sink;
  out.propagation = propagation;
  out.defer_offer = defer_offer;
  sink->set_drain_notify([this, port] { on_output_drain(port); });
}

void Hub::attach_output_remote(int port, FrameSink* sink, sim::SimTime propagation,
                               sim::Engine& remote, std::uint64_t cross_key) {
  if (port < 0 || port >= num_ports())
    throw std::out_of_range("Hub::attach_output_remote: bad port");
  if (propagation <= 0)
    throw std::invalid_argument(
        "Hub::attach_output_remote: cross-shard propagation must be positive (it is the "
        "synchronization lookahead)");
  OutputPort& out = outputs_[static_cast<std::size_t>(port)];
  out.sink = sink;
  out.propagation = propagation;
  out.remote = &remote;
  out.cross_key = cross_key;
  // No drain notify: HUB inputs always accept, so a remote trunk never
  // blocks and needs no cross-shard backpressure callback.
}

bool Hub::open_circuit(int in, int out) {
  if (in < 0 || in >= num_ports() || out < 0 || out >= num_ports()) {
    throw std::out_of_range("Hub::open_circuit: bad port");
  }
  OutputPort& o = outputs_[static_cast<std::size_t>(out)];
  if (o.reserved_by.has_value()) return false;
  o.reserved_by = in;
  return true;
}

void Hub::close_circuit(int in) {
  for (OutputPort& o : outputs_) {
    if (o.reserved_by == in) {
      o.reserved_by.reset();
      try_forward(static_cast<int>(&o - outputs_.data()));
    }
  }
}

std::optional<int> Hub::circuit_output(int in) const {
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (outputs_[i].reserved_by == in) return static_cast<int>(i);
  }
  return std::nullopt;
}

void Hub::set_port_blackout(int port, bool on) {
  if (port < 0 || port >= num_ports()) throw std::out_of_range("Hub::set_port_blackout: bad port");
  OutputPort& o = outputs_[static_cast<std::size_t>(port)];
  o.blackout = on;
  if (on) {
    // Frames already queued (or held by back-pressure) at a dead port are
    // lost; frames mid-delivery keep their scheduled events and complete.
    blackout_drops_ += o.queue.size();
    blackout_pre_ += o.queue.size();  // never reached frames_switched_
    o.blackout_drops += o.queue.size();
    if (auto* ct = obs::CausalTracer::active()) {
      for (const QueuedFrame& qf : o.queue) {
        if (!qf.frame.trace.valid()) continue;
        ct->annotate(qf.frame.trace, "drop.blackout");
        ct->stage(qf.frame.trace, "loss.wait", name_ + ".port" + std::to_string(port));
      }
    }
    o.queue.clear();
    if (o.blocked.has_value()) {
      o.blocked.reset();
      o.blocked_time += engine_.now() - o.blocked_since;
      ++blackout_drops_;
      ++blackout_post_;  // already counted in frames_switched_
      ++o.blackout_drops;
    }
  }
}

bool Hub::port_blackout(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).blackout;
}

std::size_t Hub::output_queue_depth(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).queue.size();
}

std::size_t Hub::output_queue_highwater(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).highwater;
}

sim::SimTime Hub::output_busy_time(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).busy_time;
}

bool Hub::InputPort::offer(Frame&& f, sim::SimTime first, sim::SimTime last) {
  // HUB input stages always accept; contention is resolved at the output
  // port queues (virtual cut-through buffering).
  hub_.route_frame(index_, std::move(f), first, last);
  return true;
}

void Hub::route_frame(int in_port, Frame&& f, sim::SimTime first, sim::SimTime last) {
  ++frames_in_;
  if (f.mcast.valid()) {
    // Multicast frames carry no route bytes; the tree node names every
    // output this HUB must copy the frame to.
    replicate_mcast(in_port, std::move(f), first, last);
    return;
  }
  int out;
  std::optional<int> circuit = circuit_output(in_port);
  obs::CausalTracer* ct = f.trace.valid() ? obs::CausalTracer::active() : nullptr;
  if (f.remaining_hops() > 0) {
    out = f.next_port();
    ++f.hops_done;  // the HUB consumes one route byte (source routing)
  } else if (circuit.has_value()) {
    out = *circuit;  // established circuit: no route byte needed
  } else {
    ++route_errors_;
    if (ct != nullptr) {
      ct->annotate(f.trace, "drop.route_error");
      ct->stage(f.trace, "loss.wait", name_);
    }
    return;  // undeliverable: route exhausted and no circuit
  }
  enqueue_out(in_port, out, std::move(f), first, last);
}

void Hub::replicate_mcast(int in_port, Frame&& f, sim::SimTime first, sim::SimTime last) {
  std::int32_t tnode = f.mcast_node;
  if (tnode < 0 || static_cast<std::size_t>(tnode) >= f.mcast.tree().nodes.size()) {
    ++route_errors_;  // malformed tree reference: treat like a bad route byte
    return;
  }
  const McastTree::Node& node = f.mcast.node(tnode);
  ++mcast_in_;
  // One replica per edge, in port order. The last edge adopts the incoming
  // frame's payload buffer; earlier edges copy it (host-side copy only — on
  // the wire each replica re-serializes through its own output port).
  for (std::size_t i = 0; i < node.edges.size(); ++i) {
    const McastTree::Edge& e = node.edges[i];
    Frame r;
    if (i + 1 == node.edges.size()) {
      r.payload = std::move(f.payload);
    } else {
      r.payload = PooledBytes(f.payload.size());
      std::copy(f.payload.begin(), f.payload.end(), r.payload.begin());
    }
    r.crc = f.crc;
    r.corrupted = f.corrupted;
    r.id = f.id;
    r.src_node = f.src_node;
    r.trace = f.trace;
    if (e.child >= 0) {
      r.mcast = f.mcast;  // trunk edge: the subtree rides on
      r.mcast_node = e.child;
    }  // CAB edge: mcast left invalid — the replica arrives as unicast
    ++mcast_out_;
    if (e.port < outputs_.size()) ++outputs_[e.port].mcast_frames;
    enqueue_out(in_port, static_cast<int>(e.port), std::move(r), first, last);
  }
}

void Hub::enqueue_out(int in_port, int out, Frame&& f, sim::SimTime first, sim::SimTime last) {
  obs::CausalTracer* ct = f.trace.valid() ? obs::CausalTracer::active() : nullptr;
  if (out < 0 || out >= num_ports() || outputs_[static_cast<std::size_t>(out)].sink == nullptr) {
    ++route_errors_;
    // A bad route byte that still names a real port is attributed to that
    // port; a byte beyond the radix has no port to charge.
    if (out >= 0 && out < num_ports()) ++outputs_[static_cast<std::size_t>(out)].route_errors;
    if (ct != nullptr) {
      ct->annotate(f.trace, "drop.route_error");
      ct->stage(f.trace, "loss.wait", name_);
    }
    return;
  }
  OutputPort& o = outputs_[static_cast<std::size_t>(out)];
  if (o.blackout) {
    ++blackout_drops_;  // dead output: the frame is silently lost
    ++blackout_pre_;
    ++o.blackout_drops;
    if (ct != nullptr) {
      ct->annotate(f.trace, "drop.blackout");
      ct->stage(f.trace, "loss.wait", name_ + ".port" + std::to_string(out));
    }
    return;
  }
  if (ct != nullptr) {
    ++f.trace.hop;  // one switch traversal
    ct->stage(f.trace, "hub.queue", name_ + ".port" + std::to_string(out));
  }
  o.queue.push_back({std::move(f), first, last, in_port});
  o.highwater = std::max(o.highwater, o.queue.size());
  try_forward(out);
}

void Hub::try_forward(int out_port) {
  OutputPort& o = outputs_[static_cast<std::size_t>(out_port)];
  if (o.transmitting || o.blocked.has_value() || o.queue.empty()) return;
  // An output reserved by a circuit only carries frames from that input;
  // frames from other inputs wait until the circuit closes.
  if (o.reserved_by.has_value() && o.queue.front().in_port != *o.reserved_by) return;

  QueuedFrame qf = std::move(o.queue.front());
  o.queue.pop_front();
  o.transmitting = true;
  if (qf.frame.trace.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->stage(qf.frame.trace, "hub.fwd", name_ + ".port" + std::to_string(out_port));
    }
  }

  sim::SimTime ttime =
      sim::transmit_time(static_cast<std::int64_t>(qf.frame.wire_bytes()), rate_);
  // Virtual cut-through: forwarding can start once the first byte has
  // arrived and passed the crossbar (setup_), or once the port frees.
  sim::SimTime start = std::max(engine_.now(), qf.first_in + setup_);
  // If the port was free, the frame streams through pipelined with its
  // arrival; otherwise it re-serializes from the HUB buffer.
  sim::SimTime out_first = start;
  sim::SimTime out_last = std::max(qf.last_in + setup_, start + ttime);

  ++frames_switched_;
  ++o.frames;
  bytes_switched_ += qf.frame.wire_bytes();
  o.busy_time += out_last - out_first;

  engine_.schedule_at(out_last, [this, out_port] {
    OutputPort& p = outputs_[static_cast<std::size_t>(out_port)];
    p.transmitting = false;
    try_forward(out_port);
  });

  if (o.remote != nullptr) {
    // Shard boundary. The local path (below) schedules delivery when the
    // first byte *leaves* (out_first) and lets the sink see future byte
    // times; across shards that would put an event on the remote queue at
    // the present instant, collapsing the lookahead to zero. Instead the
    // offer itself is posted at the frame's first-byte arrival time — the
    // earliest simulated instant the remote shard can observe it — which
    // is >= now + propagation, the bound the window barrier relies on.
    FrameSink* sink = o.sink;
    sim::SimTime first = out_first + o.propagation;
    sim::SimTime last = out_last + o.propagation;
    engine_.send_cross(
        *o.remote, first,
        sim::Engine::Action([sink, first, last, fr = std::move(qf.frame)]() mutable {
          sink->offer(std::move(fr), first, last);  // HUB inputs always accept
        }),
        o.cross_key, o.cross_seq++);
    // Delivered from this HUB's perspective at post time: the remote input
    // always accepts, and counting here keeps the output-side conservation
    // sum exact between the post and the mailbox drain.
    ++frames_delivered_;
    ++o.delivered;
    return;
  }

  o.delivering.push_back(
      Delivering{std::move(qf.frame), out_first + o.propagation, out_last + o.propagation});
  // defer_offer: the sink hears about the frame when its first byte arrives
  // (matching the cross-shard path) instead of when it departs. out_first is
  // non-decreasing per port, so the Delivering FIFO order is preserved
  // either way.
  engine_.schedule_at(o.defer_offer ? out_first + o.propagation : out_first,
                      [this, out_port] { deliver_front(out_port); });
}

void Hub::deliver_front(int out_port) {
  OutputPort& p = outputs_[static_cast<std::size_t>(out_port)];
  Delivering d = std::move(p.delivering.front());
  p.delivering.pop_front();
  if (!p.sink->offer(std::move(d.frame), d.first, d.last)) {
    p.blocked.emplace(std::move(d.frame));
    p.blocked_span = d.last - d.first;
    p.blocked_since = engine_.now();
    return;
  }
  ++frames_delivered_;
  ++p.delivered;
}

void Hub::on_output_drain(int out_port) {
  OutputPort& o = outputs_[static_cast<std::size_t>(out_port)];
  if (o.blocked.has_value()) {
    Frame f = std::move(*o.blocked);
    o.blocked.reset();
    sim::SimTime first = engine_.now();
    sim::SimTime last = first + o.blocked_span;
    if (!o.sink->offer(std::move(f), first, last)) {
      o.blocked.emplace(std::move(f));
      return;
    }
    o.blocked_time += engine_.now() - o.blocked_since;
    ++frames_delivered_;
    ++o.delivered;
  }
  try_forward(out_port);
}

sim::SimTime Hub::output_blocked_time(int port) const {
  const OutputPort& o = outputs_.at(static_cast<std::size_t>(port));
  sim::SimTime t = o.blocked_time;
  if (o.blocked.has_value()) t += engine_.now() - o.blocked_since;  // still blocked
  return t;
}

std::uint64_t Hub::output_frames(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).frames;
}

std::uint64_t Hub::output_blackout_drops(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).blackout_drops;
}

std::uint64_t Hub::output_route_errors(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).route_errors;
}

std::uint64_t Hub::output_mcast_frames(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).mcast_frames;
}

std::uint64_t Hub::output_delivered(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).delivered;
}

std::uint64_t Hub::output_in_flight(int port) const {
  const OutputPort& o = outputs_.at(static_cast<std::size_t>(port));
  return o.delivering.size() + (o.blocked.has_value() ? 1 : 0);
}

void Hub::register_metrics(obs::Registration& reg) const {
  reg.probe(-1, "hub", name_ + ".frames_switched",
            [this] { return static_cast<std::int64_t>(frames_switched_); });
  reg.probe(-1, "hub", name_ + ".bytes_switched",
            [this] { return static_cast<std::int64_t>(bytes_switched_); });
  reg.probe(-1, "hub", name_ + ".route_errors",
            [this] { return static_cast<std::int64_t>(route_errors_); });
  reg.probe(-1, "hub", name_ + ".blackout_drops",
            [this] { return static_cast<std::int64_t>(blackout_drops_); });
  reg.probe(-1, "hub", name_ + ".mcast_in",
            [this] { return static_cast<std::int64_t>(mcast_in_); });
  reg.probe(-1, "hub", name_ + ".mcast_out",
            [this] { return static_cast<std::int64_t>(mcast_out_); });
  for (int p = 0; p < num_ports(); ++p) {
    if (outputs_[static_cast<std::size_t>(p)].sink == nullptr) continue;  // unused port
    std::string prefix = name_ + ".port" + std::to_string(p);
    reg.probe(-1, "hub", prefix + ".frames",
              [this, p] { return static_cast<std::int64_t>(output_frames(p)); });
    reg.probe(-1, "hub", prefix + ".busy_ns", [this, p] { return output_busy_time(p); });
    reg.probe(-1, "hub", prefix + ".blocked_ns", [this, p] { return output_blocked_time(p); });
    reg.probe(-1, "hub", prefix + ".queue_highwater",
              [this, p] { return static_cast<std::int64_t>(output_queue_highwater(p)); });
    reg.probe(-1, "hub", prefix + ".blackout_drops",
              [this, p] { return static_cast<std::int64_t>(output_blackout_drops(p)); });
    reg.probe(-1, "hub", prefix + ".route_errors",
              [this, p] { return static_cast<std::int64_t>(output_route_errors(p)); });
    reg.probe(-1, "hub", prefix + ".mcast_frames",
              [this, p] { return static_cast<std::int64_t>(output_mcast_frames(p)); });
  }
}

}  // namespace nectar::hw
