// Collective-latency curve: barrier on the CAB-resident engine (src/coll,
// multicast release over the HUB crossbar) vs the host-level baseline (every
// message pays a driver interrupt, a process wakeup and VME programmed I/O),
// swept over group sizes 8 -> 512 on the same fat-tree fabric.
//
// There is no paper figure for this; it is the acceptance experiment for the
// collective subsystem (docs/COLLECTIVES.md): the nproto argument — protocol
// processing belongs on the CAB — extended from point-to-point datagrams to
// group operations. The bench exits non-zero unless the CAB engine beats the
// host baseline at every size with the gap widening as the group grows.
//
// Everything reported is a function of simulated execution only (no wall
// clock), so the committed BENCH_collectives.json must reproduce
// byte-for-byte from `bench_collectives --json`. The 512-node CAB point is
// re-run under the conservative-parallel engine (4 shards) and must agree
// with the sequential run on every count — the same cross-check
// bench_parallel applies to its soak traffic.
//
//   --trace <path>   re-runs one 8-node CAB barrier with the causal tracer
//                    sampling every message (shards=1 only), prints each
//                    stage timeline, and writes a Chrome trace of the run.
//   --profile <path> profiles the 512-node CAB run (cycle attribution;
//                    charges no simulated time, reported numbers unchanged).

#include "common.hpp"
#include "obs/causal.hpp"
#include "scenario/collectives.hpp"
#include "scenario/engine.hpp"

namespace nectar::bench {
namespace {

constexpr const char* kConfig = R"(
[scenario]
name = collectives
seed = 1990
duration = 4s

# VME backplanes exist at every size so both modes run the same fabric; the
# CAB mode simply never touches them.
[topology]
kind = fat_tree
nodes = 8
hub_ports = 16
spines = 4
trunk_propagation = 5us
route_spread = yes
with_vme = yes

[collectives]
enabled = true
mode = cab
op = barrier
algorithm = tree
iterations = 12
interval = 100us
)";

struct Point {
  std::uint64_t rounds = 0;
  std::uint64_t msgs = 0;
  std::uint64_t data_errors = 0;
  std::uint64_t mcast_out = 0;
  std::uint64_t lat_count = 0;
  double mean_us = 0.0, p50_us = 0.0, p99_us = 0.0;
};

scenario::ScenarioSpec spec_at(const std::string& mode, int nodes, int shards) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kConfig));
  spec.topology.nodes = nodes;
  spec.collectives.mode = mode;
  spec.parallel.shards = shards;
  return spec;
}

Point run_point(const std::string& mode, int nodes, int shards,
                const BenchOptions* profile_opts) {
  scenario::Scenario sc(spec_at(mode, nodes, shards));
  if (profile_opts != nullptr) start_profile(*profile_opts, sc.net().profiler());
  sc.run();

  scenario::CollectiveDriver& drv = *sc.collectives();
  Point p;
  p.rounds = drv.rounds_completed();
  p.data_errors = drv.data_errors();
  obs::LatencyHistogram lat;
  for (int i = 0; i < nodes; ++i) {
    if (coll::CollectiveEngine* e = drv.engine(i)) {
      p.msgs += e->msgs_sent();
      lat.merge(e->barrier_latency());
    }
    if (coll::HostCollective* h = drv.host(i)) {
      p.msgs += h->msgs_sent();
      lat.merge(h->barrier_latency());
    }
  }
  for (int h = 0; h < sc.net().hub_count(); ++h) p.mcast_out += sc.net().hub(h).mcast_out();
  p.lat_count = lat.count();
  p.mean_us = lat.mean() / sim::kMicrosecond;
  p.p50_us = lat.p50() / sim::kMicrosecond;
  p.p99_us = lat.p99() / sim::kMicrosecond;
  if (profile_opts != nullptr) finish_profile(*profile_opts, sc.net().profiler());
  return p;
}

/// Satellite: one fully-sampled 8-node CAB barrier through the causal
/// tracer, so a single barrier's stage timeline (tx.coll -> hub/link hops ->
/// rx.coll) is inspectable. Tracing is process-global state, hence shards=1.
int run_trace(const BenchOptions& options) {
  scenario::ScenarioSpec spec = spec_at("cab", 8, /*shards=*/1);
  spec.collectives.iterations = 1;
  spec.tracing.enabled = true;
  spec.tracing.sample = 1.0;
  spec.tracing.top_k = 8;
  scenario::Scenario sc(std::move(spec));
  sc.net().tracer().set_enabled(true);
  sc.run();

  const obs::CausalTracer& ct = *sc.causal_tracer();
  obs::CriticalPathAnalyzer cpa(ct);
  std::string violation = cpa.verify();
  if (!violation.empty()) {
    std::fprintf(stderr, "FAIL: cut-point invariant violated: %s\n", violation.c_str());
    return 1;
  }
  std::printf("\n--- one 8-node barrier, every message traced ---\n");
  std::uint64_t finished = 0;
  for (const auto& t : ct.traces()) {
    if (!t->finished) continue;
    ++finished;
    std::printf("%-14s node%d -> %-6s %7.1f us:", t->flow.c_str(), t->src,
                t->dst < 0 ? "mcast" : ("node" + std::to_string(t->dst)).c_str(),
                static_cast<double>(t->e2e()) / sim::kMicrosecond);
    for (const obs::StageRecord& s : t->stages) {
      std::printf("  %s@%s %.1fus", s.label.c_str(), s.where.c_str(),
                  static_cast<double>(s.duration()) / sim::kMicrosecond);
    }
    std::printf("\n");
  }
  if (finished == 0) {
    std::fprintf(stderr, "FAIL: no collective traces finished\n");
    return 1;
  }
  finish_trace(options.trace_path, sc.net().tracer());
  return 0;
}

int run(const BenchOptions& options) {
  print_header("collective barrier latency, CAB engine vs host baseline");
  std::printf("%5s %6s | %9s %9s %9s | %9s %9s %9s | %7s\n", "nodes", "iters", "cab mean",
              "cab p50", "cab p99", "host mean", "host p50", "host p99", "ratio");

  obs::RunReport report("collectives");
  report.param("topology", "fat_tree");
  report.param("op", "barrier");
  report.param("algorithm", "tree");
  report.param("iterations", 12);

  const std::vector<int> kSizes = {8, 32, 128, 512};
  std::vector<double> ratios;
  int rc = 0;
  for (int nodes : kSizes) {
    // Profile the heaviest CAB run when asked; profiling charges no
    // simulated time, so the reported rows are unchanged.
    const BenchOptions* prof = nodes == 512 ? &options : nullptr;
    Point cab = run_point("cab", nodes, /*shards=*/1, prof);
    Point host = run_point("host", nodes, /*shards=*/1, nullptr);
    double ratio = host.mean_us / cab.mean_us;
    ratios.push_back(ratio);
    std::printf("%5d %6llu | %8.1fu %8.1fu %8.1fu | %8.1fu %8.1fu %8.1fu | %6.1fx\n", nodes,
                static_cast<unsigned long long>(cab.rounds), cab.mean_us, cab.p50_us,
                cab.p99_us, host.mean_us, host.p50_us, host.p99_us, ratio);

    for (const auto& [tag, p] : {std::pair<const char*, const Point&>{"cab", cab},
                                 std::pair<const char*, const Point&>{"host", host}}) {
      std::string k = "coll." + std::string(tag) + ".n" + std::to_string(nodes);
      report.add(k + ".mean_us", p.mean_us, "us");
      report.add(k + ".p50_us", p.p50_us, "us");
      report.add(k + ".p99_us", p.p99_us, "us");
      report.add(k + ".rounds", static_cast<double>(p.rounds), "count");
      report.add(k + ".msgs", static_cast<double>(p.msgs), "count");
      report.add(k + ".hub_mcast_out", static_cast<double>(p.mcast_out), "frames");
    }
    report.add("coll.n" + std::to_string(nodes) + ".host_over_cab", ratio, "ratio");

    for (const auto& [tag, p] : {std::pair<const char*, const Point&>{"cab", cab},
                                 std::pair<const char*, const Point&>{"host", host}}) {
      if (p.rounds != 12) {
        std::fprintf(stderr, "error: %s n=%d completed %llu/12 rounds\n", tag, nodes,
                     static_cast<unsigned long long>(p.rounds));
        rc = 1;
      }
      if (p.data_errors != 0) {
        std::fprintf(stderr, "error: %s n=%d saw %llu data errors\n", tag, nodes,
                     static_cast<unsigned long long>(p.data_errors));
        rc = 1;
      }
    }
    if (cab.mean_us >= host.mean_us) {
      std::fprintf(stderr, "error: CAB engine not faster than host baseline at n=%d\n", nodes);
      rc = 1;
    }
    if (cab.mcast_out == 0) {
      std::fprintf(stderr, "error: CAB release never used HUB multicast at n=%d\n", nodes);
      rc = 1;
    }
  }
  if (ratios.back() <= ratios.front()) {
    std::fprintf(stderr, "error: host/CAB gap did not widen from n=%d to n=%d (%.2f vs %.2f)\n",
                 kSizes.front(), kSizes.back(), ratios.front(), ratios.back());
    rc = 1;
  }

  // The same 512-node CAB run under the conservative-parallel engine: every
  // count (rounds, messages, latency samples) must agree with the sequential
  // engine exactly — the cross-check bench_parallel applies to delivered
  // counts. Timestamps may differ by tie-break order at shard boundaries, so
  // the mean only has to agree within 1%.
  Point seq = run_point("cab", 512, /*shards=*/1, nullptr);
  Point par = run_point("cab", 512, /*shards=*/4, nullptr);
  std::printf("\nparallel cross-check (512 nodes, cab, 4 shards): "
              "rounds %llu/%llu  mean %.1fus/%.1fus\n",
              static_cast<unsigned long long>(par.rounds),
              static_cast<unsigned long long>(seq.rounds), par.mean_us, seq.mean_us);
  bool par_ok = par.rounds == seq.rounds && par.lat_count == seq.lat_count &&
                par.msgs == seq.msgs &&
                std::abs(par.mean_us - seq.mean_us) <= 0.01 * seq.mean_us;
  if (!par_ok) {
    std::fprintf(stderr, "error: parallel engine diverged from sequential run\n");
    rc = 1;
  }
  report.add("coll.par4.n512.rounds", static_cast<double>(par.rounds), "count");
  report.add("coll.par4.n512.mean_us", par.mean_us, "us");
  report.add("coll.par4.n512.matches_sequential", par_ok ? 1.0 : 0.0, "bool");

  finish_report(options, report);
  if (!options.trace_path.empty()) {
    int trc = run_trace(options);
    if (trc != 0) return trc;
  }
  return rc;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  return nectar::bench::run(nectar::bench::parse_options(argc, argv));
}
